#include "analysis/footprint.h"

#include <gtest/gtest.h>

#include "analysis/sites.h"
#include "ir/builder.h"

namespace mhla::analysis {
namespace {

using ir::ac;
using ir::av;

/// Helper: build a program with one access, return (program, site).
struct OneAccess {
  ir::Program program;
  std::vector<AccessSite> sites;

  const AccessSite& site() const { return sites.at(0); }
  const ir::ArrayDecl& array() const { return *site().array; }
};

OneAccess make_2d_blocked() {
  ir::ProgramBuilder pb("p");
  pb.array("a", {64, 64}, 4);
  pb.begin_loop("bi", 0, 4);
  pb.begin_loop("i", 0, 16);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 1).read("a", {av("bi", 16) + av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  OneAccess out{pb.finish(), {}};
  out.sites = collect_sites(out.program);
  return out;
}

TEST(Footprint, FullySpecifiedAtInnermostLevel) {
  OneAccess t = make_2d_blocked();
  // All three loops fixed: single element.
  Box box = footprint(t.array(), *t.site().access, t.site().path, 3);
  EXPECT_EQ(box.elems(), 1);
}

TEST(Footprint, InnerLoopVaryingOnly) {
  OneAccess t = make_2d_blocked();
  // bi, i fixed; j varies: 1 x 16.
  Box box = footprint(t.array(), *t.site().access, t.site().path, 2);
  EXPECT_EQ(box.widths, (std::vector<ir::i64>{1, 16}));
}

TEST(Footprint, BlockLevel) {
  OneAccess t = make_2d_blocked();
  // bi fixed; i, j vary: 16 x 16 block.
  Box box = footprint(t.array(), *t.site().access, t.site().path, 1);
  EXPECT_EQ(box.widths, (std::vector<ir::i64>{16, 16}));
  EXPECT_EQ(box.elems(), 256);
}

TEST(Footprint, WholeNest) {
  OneAccess t = make_2d_blocked();
  // Everything varies: bi contributes 16*(4-1), i contributes 15 -> 64 rows.
  Box box = footprint(t.array(), *t.site().access, t.site().path, 0);
  EXPECT_EQ(box.widths, (std::vector<ir::i64>{64, 16}));
}

TEST(Footprint, ClampsToArrayExtent) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  ir::Program p = pb.finish();
  auto sites = collect_sites(p);
  Box box = footprint(*sites[0].array, *sites[0].access, sites[0].path, 0);
  EXPECT_EQ(box.widths[0], 8);  // never exceeds the extent
}

TEST(Footprint, OverlappingWindowAccess) {
  // Sliding 3-wide window: a[i + k], i in 0..10, k in 0..3.
  ir::ProgramBuilder pb("p");
  pb.array("a", {16}, 4);
  pb.begin_loop("i", 0, 10);
  pb.begin_loop("k", 0, 3);
  pb.stmt("s", 1).read("a", {av("i") + av("k")});
  pb.end_loop();
  pb.end_loop();
  ir::Program p = pb.finish();
  auto sites = collect_sites(p);
  // i fixed: window of 3.
  EXPECT_EQ(footprint(*sites[0].array, *sites[0].access, sites[0].path, 1).elems(), 3);
  // both vary: 9 + 2 + 1 = 12.
  EXPECT_EQ(footprint(*sites[0].array, *sites[0].access, sites[0].path, 0).elems(), 12);
}

TEST(Footprint, StridedAccessWidensBox) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {64}, 4);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).read("a", {av("i", 4)});  // touches 0,4,...,60
  pb.end_loop();
  ir::Program p = pb.finish();
  auto sites = collect_sites(p);
  // Bounding box spans 61 elements (holes included, rectangular model).
  EXPECT_EQ(footprint(*sites[0].array, *sites[0].access, sites[0].path, 0).elems(), 61);
}

TEST(Footprint, BoxMerge) {
  Box a{{4, 8}};
  Box b{{6, 2}};
  Box m = Box::merge(a, b);
  EXPECT_EQ(m.widths, (std::vector<ir::i64>{6, 8}));
}

TEST(Footprint, BoxMergeDifferentRanks) {
  Box a{{4}};
  Box b{{2, 3}};
  Box m = Box::merge(a, b);
  EXPECT_EQ(m.widths, (std::vector<ir::i64>{4, 3}));
}

TEST(DeltaElems, FullReloadAtLevelZero) {
  OneAccess t = make_2d_blocked();
  i64 delta = delta_elems(t.array(), *t.site().access, t.site().path, 0);
  EXPECT_EQ(delta, 64 * 16);
}

TEST(DeltaElems, DisjointBlocksReloadFully) {
  OneAccess t = make_2d_blocked();
  // Block at level 1 shifts by 16 rows per bi step; box is 16 rows -> no
  // overlap, full reload.
  i64 delta = delta_elems(t.array(), *t.site().access, t.site().path, 1);
  EXPECT_EQ(delta, 256);
}

TEST(DeltaElems, SlidingWindowTransfersOnlyNewColumns) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {4, 64}, 4);
  pb.begin_loop("i", 0, 32);
  pb.begin_loop("r", 0, 4);
  pb.begin_loop("k", 0, 8);
  pb.stmt("s", 1).read("a", {av("r"), av("i") + av("k")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  ir::Program p = pb.finish();
  auto sites = collect_sites(p);
  // Box at level 1 (i fixed): 4 x 8 = 32.  Shift per i step: 1 column.
  // Delta = 32 - 4*7 = 4 (one new column of 4 rows).
  EXPECT_EQ(delta_elems(*sites[0].array, *sites[0].access, sites[0].path, 1), 4);
}

TEST(DeltaElems, StationaryBoxReloadsWholesale) {
  // The inner table does not move with the outer loop: conservative full
  // reload (the buffer is recycled between iterations).
  ir::ProgramBuilder pb("p");
  pb.array("tab", {16}, 4);
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("k", 0, 16);
  pb.stmt("s", 1).read("tab", {av("k")});
  pb.end_loop();
  pb.end_loop();
  ir::Program p = pb.finish();
  auto sites = collect_sites(p);
  EXPECT_EQ(delta_elems(*sites[0].array, *sites[0].access, sites[0].path, 1), 16);
}

}  // namespace
}  // namespace mhla::analysis
