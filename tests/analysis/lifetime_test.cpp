#include "analysis/lifetime.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::analysis {
namespace {

using ir::ac;
using ir::av;

std::map<std::string, LiveRange> ranges_of(const ir::Program& p) {
  auto sites = collect_sites(p);
  return array_live_ranges(p, sites);
}

ir::Program chain_program(bool mark_io) {
  // nest0: src -> mid, nest1: mid -> dst, nest2: dst re-read.
  ir::ProgramBuilder pb("p");
  auto src = pb.array("src", {8}, 4);
  pb.array("mid", {8}, 4);
  auto dst = pb.array("dst", {8}, 4);
  if (mark_io) {
    src.input();
    dst.output();
  }
  pb.begin_loop("i", 0, 8);
  pb.stmt("s0", 1).read("src", {av("i")}).write("mid", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 8);
  pb.stmt("s1", 1).read("mid", {av("j")}).write("dst", {av("j")});
  pb.end_loop();
  pb.begin_loop("k", 0, 8);
  pb.stmt("s2", 1).read("dst", {av("k")});
  pb.end_loop();
  return pb.finish();
}

TEST(Lifetime, RangesFollowAccesses) {
  ir::Program p = chain_program(false);
  auto ranges = ranges_of(p);
  EXPECT_EQ(ranges["src"].first, 0);
  EXPECT_EQ(ranges["src"].last, 0);
  EXPECT_EQ(ranges["mid"].first, 0);
  EXPECT_EQ(ranges["mid"].last, 1);
  EXPECT_EQ(ranges["dst"].first, 1);
  EXPECT_EQ(ranges["dst"].last, 2);
}

TEST(Lifetime, InputPinnedToStartOutputToEnd) {
  ir::Program p = chain_program(true);
  auto ranges = ranges_of(p);
  EXPECT_EQ(ranges["src"].first, 0);
  EXPECT_EQ(ranges["dst"].last, 2);
}

TEST(Lifetime, OutputExtendsPastLastAccess) {
  ir::ProgramBuilder pb("p");
  pb.array("early_out", {8}, 4).output();
  pb.begin_loop("i", 0, 8);
  pb.stmt("s0", 1).write("early_out", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 8);
  pb.stmt("s1", 2);
  pb.end_loop();
  ir::Program p = pb.finish();
  auto ranges = ranges_of(p);
  EXPECT_EQ(ranges["early_out"].first, 0);
  EXPECT_EQ(ranges["early_out"].last, 1);  // pinned to final nest
}

TEST(Lifetime, UnaccessedArrayIsDead) {
  ir::ProgramBuilder pb("p");
  pb.array("ghost", {8}, 4);
  pb.begin_loop("i", 0, 4);
  pb.stmt("s", 1);
  pb.end_loop();
  ir::Program p = pb.finish();
  auto ranges = ranges_of(p);
  EXPECT_TRUE(is_dead(ranges["ghost"]));
}

TEST(Lifetime, OverlapPredicate) {
  LiveRange a{0, 2};
  LiveRange b{2, 4};
  LiveRange c{3, 5};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(Lifetime, LengthIsInclusive) {
  EXPECT_EQ((LiveRange{1, 3}).length(), 3);
  EXPECT_EQ((LiveRange{2, 2}).length(), 1);
}

TEST(Lifetime, DisjointIntermediatesEnableInPlace) {
  // Two intermediates, each live in a single disjoint window — the property
  // the in-place optimizer exploits.
  ir::ProgramBuilder pb("p");
  pb.array("in", {8}, 4).input();
  pb.array("t0", {8}, 4);
  pb.array("t1", {8}, 4);
  pb.array("out", {8}, 4).output();
  pb.begin_loop("a", 0, 8);
  pb.stmt("s0", 1).read("in", {av("a")}).write("t0", {av("a")});
  pb.end_loop();
  pb.begin_loop("b", 0, 8);
  pb.stmt("s1", 1).read("t0", {av("b")}).write("t1", {av("b")});
  pb.end_loop();
  pb.begin_loop("c", 0, 8);
  pb.stmt("s2", 1).read("t1", {av("c")}).write("out", {av("c")});
  pb.end_loop();
  auto ranges = ranges_of(pb.finish());
  EXPECT_EQ(ranges["t0"].last, 1);
  EXPECT_EQ(ranges["t1"].first, 1);
  // t0 dies exactly when t1 is born: they overlap only at nest 1.
  EXPECT_TRUE(ranges["t0"].overlaps(ranges["t1"]));
  EXPECT_FALSE((LiveRange{ranges["t0"].first, 0}).overlaps(ranges["t1"]));
}

}  // namespace
}  // namespace mhla::analysis
