#include "analysis/reuse.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::analysis {
namespace {

using ir::ac;
using ir::av;

const CopyCandidate* find_cc(const ReuseAnalysis& reuse, const std::string& array, int nest,
                             int level) {
  for (const CopyCandidate& cc : reuse.candidates()) {
    if (cc.array == array && cc.nest == nest && cc.level == level) return &cc;
  }
  return nullptr;
}

struct Analyzed {
  ir::Program program;
  std::vector<AccessSite> sites;
  ReuseAnalysis reuse;
};

Analyzed analyze(ir::Program p) {
  Analyzed a{std::move(p), {}, {}};
  a.sites = collect_sites(a.program);
  a.reuse = ReuseAnalysis::run(a.program, a.sites);
  return a;
}

ir::Program blocked_program() {
  // data[bi][k] swept `rep` times per block -> strong level-1 reuse.
  ir::ProgramBuilder pb("p");
  pb.array("data", {32, 64}, 4);
  pb.begin_loop("bi", 0, 32);
  pb.begin_loop("rep", 0, 10);
  pb.begin_loop("k", 0, 64);
  pb.stmt("use", 1).read("data", {av("bi"), av("k")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  return pb.finish();
}

TEST(Reuse, GeneratesChainPerLevel) {
  Analyzed a = analyze(blocked_program());
  // Levels 0..3 for the single access.
  EXPECT_EQ(a.reuse.candidates().size(), 4u);
  for (int level = 0; level <= 3; ++level) {
    EXPECT_NE(find_cc(a.reuse, "data", 0, level), nullptr) << "level " << level;
  }
}

TEST(Reuse, RowCandidateShape) {
  Analyzed a = analyze(blocked_program());
  const CopyCandidate* cc = find_cc(a.reuse, "data", 0, 1);  // bi fixed
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->elems, 64);
  EXPECT_EQ(cc->bytes, 256);
  EXPECT_EQ(cc->transfers, 32);             // one per bi iteration
  EXPECT_EQ(cc->elems_per_transfer, 64);    // row moves wholesale
  EXPECT_EQ(cc->reads_served, 32 * 10 * 64);
  EXPECT_EQ(cc->writes_served, 0);
  EXPECT_DOUBLE_EQ(cc->reuse_factor(), 10.0);
}

TEST(Reuse, Level2CandidateReloadsEveryRep) {
  Analyzed a = analyze(blocked_program());
  const CopyCandidate* cc = find_cc(a.reuse, "data", 0, 2);  // bi, rep fixed
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->elems, 64);
  EXPECT_EQ(cc->transfers, 320);
  // Stationary w.r.t. rep: conservative full reload, reuse factor 1.
  EXPECT_DOUBLE_EQ(cc->reuse_factor(), 1.0);
}

TEST(Reuse, WholeNestCandidate) {
  Analyzed a = analyze(blocked_program());
  const CopyCandidate* cc = find_cc(a.reuse, "data", 0, 0);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->elems, 32 * 64);
  EXPECT_EQ(cc->transfers, 1);
  EXPECT_DOUBLE_EQ(cc->reuse_factor(), 10.0);
}

TEST(Reuse, MergesSitesOfSameArraySameNest) {
  // Two reads of adjacent rows merge into one (taller) candidate box.
  ir::ProgramBuilder pb("p");
  pb.array("a", {17, 16}, 4);
  pb.begin_loop("i", 0, 16);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 1)
      .read("a", {av("i"), av("j")})
      .read("a", {av("i") + ac(1), av("j")});
  pb.end_loop();
  pb.end_loop();
  Analyzed a = analyze(pb.finish());
  const CopyCandidate* cc = find_cc(a.reuse, "a", 0, 1);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->site_ids.size(), 2u);
  EXPECT_EQ(cc->elems, 2 * 16);  // union box: 2 rows
  EXPECT_EQ(cc->reads_served, 2 * 16 * 16);
}

TEST(Reuse, SeparateNestsYieldSeparateCandidates) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {16}, 4);
  for (int n = 0; n < 2; ++n) {
    pb.begin_loop("i", 0, 16);
    pb.stmt("s", 1).read("a", {av("i")});
    pb.end_loop();
  }
  Analyzed a = analyze(pb.finish());
  EXPECT_NE(find_cc(a.reuse, "a", 0, 0), nullptr);
  EXPECT_NE(find_cc(a.reuse, "a", 1, 0), nullptr);
}

TEST(Reuse, WriteAccessesTracked) {
  ir::ProgramBuilder pb("p");
  pb.array("out", {16}, 4);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).write("out", {av("i")});
  pb.end_loop();
  Analyzed a = analyze(pb.finish());
  const CopyCandidate* cc = find_cc(a.reuse, "out", 0, 0);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->writes_served, 16);
  EXPECT_EQ(cc->reads_served, 0);
  EXPECT_TRUE(cc->has_writes());
}

TEST(Reuse, CandidatesForFiltersByArray) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.array("b", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")}).read("b", {av("i")});
  pb.end_loop();
  Analyzed an = analyze(pb.finish());
  for (int id : an.reuse.candidates_for("a")) {
    EXPECT_EQ(an.reuse.candidate(id).array, "a");
  }
  EXPECT_FALSE(an.reuse.candidates_for("a").empty());
  EXPECT_FALSE(an.reuse.candidates_for("b").empty());
  EXPECT_TRUE(an.reuse.candidates_for("zzz").empty());
}

TEST(Reuse, IdsAreDenseAndSorted) {
  Analyzed a = analyze(blocked_program());
  for (std::size_t i = 0; i < a.reuse.candidates().size(); ++i) {
    EXPECT_EQ(a.reuse.candidates()[i].id, static_cast<int>(i));
  }
}

TEST(Reuse, CarryingLoop) {
  Analyzed a = analyze(blocked_program());
  EXPECT_EQ(find_cc(a.reuse, "data", 0, 0)->carrying_loop(), nullptr);
  const CopyCandidate* cc1 = find_cc(a.reuse, "data", 0, 1);
  ASSERT_NE(cc1->carrying_loop(), nullptr);
  EXPECT_EQ(cc1->carrying_loop()->iter(), "bi");
}

TEST(Reuse, ElemBytesPropagated) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 2);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  Analyzed an = analyze(pb.finish());
  const CopyCandidate* cc = find_cc(an.reuse, "a", 0, 0);
  EXPECT_EQ(cc->elem_bytes, 2);
  EXPECT_EQ(cc->bytes_per_transfer(), cc->elems_per_transfer * 2);
}

}  // namespace
}  // namespace mhla::analysis
