#include "ir/transform.h"

#include <gtest/gtest.h>

#include "analysis/reuse.h"
#include "analysis/sites.h"
#include "helpers.h"
#include "ir/validate.h"

namespace mhla::ir {
namespace {

/// Producer nest writes t[i]; consumer nest reads t[i] (and t[i-1]):
/// legal to fuse, the read never runs ahead of the write.
Program legal_pair(bool read_behind) {
  ProgramBuilder pb("pair");
  pb.array("src", {64}, 4).input();
  pb.array("t", {64}, 4);
  pb.array("dst", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.stmt("produce", 1).read("src", {av("i")}).write("t", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 1, 64);
  auto stmt = pb.stmt("consume", 1);
  stmt.read("t", {av("j")});
  if (read_behind) stmt.read("t", {av("j") - ac(1)});
  stmt.write("dst", {av("j")});
  pb.end_loop();
  return pb.finish();
}

TEST(Fusion, RejectsMismatchedHeaders) {
  Program p = legal_pair(false);  // loop 0 starts at 0, loop 1 starts at 1
  EXPECT_THROW(fuse_nests(p, 0), std::invalid_argument);
}

Program fusable_pair(i64 read_offset) {
  ProgramBuilder pb("pair");
  pb.array("src", {80}, 4).input();
  pb.array("t", {80}, 4);
  pb.array("dst", {80}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.stmt("produce", 1).read("src", {av("i")}).write("t", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 64);
  pb.stmt("consume", 1).read("t", {av("j") + ac(read_offset)}).write("dst", {av("j")});
  pb.end_loop();
  return pb.finish();
}

TEST(Fusion, FusesLegalPair) {
  Program p = fusable_pair(0);
  i64 before = dynamic_statement_instances(p);
  Program fused = fuse_nests(p, 0);
  EXPECT_EQ(fused.top().size(), 1u);
  EXPECT_EQ(dynamic_statement_instances(fused), before);
  EXPECT_TRUE(validate(fused).empty());

  // Both statements now sit under one loop named after the first nest.
  const LoopNode& loop = fused.top()[0]->as_loop();
  EXPECT_EQ(loop.iter(), "i");
  ASSERT_EQ(loop.body().size(), 2u);
  EXPECT_EQ(loop.body()[0]->as_stmt().name(), "produce");
  EXPECT_EQ(loop.body()[1]->as_stmt().name(), "consume");
}

TEST(Fusion, RenamesConsumerSubscripts) {
  Program fused = fuse_nests(fusable_pair(0), 0);
  const StmtNode& consume = fused.top()[0]->as_loop().body()[1]->as_stmt();
  for (const ArrayAccess& access : consume.accesses()) {
    EXPECT_EQ(access.index[0].coef("j"), 0);
    EXPECT_EQ(access.index[0].coef("i"), 1);
  }
}

TEST(Fusion, RejectsReadAhead) {
  // consume reads t[j+1], which iteration j of the fused loop has not
  // produced yet.
  EXPECT_THROW(fuse_nests(fusable_pair(1), 0), std::invalid_argument);
}

TEST(Fusion, AcceptsReadBehindWindow) {
  ProgramBuilder pb("p");
  pb.array("t", {66}, 4);
  pb.array("dst", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.stmt("produce", 1).write("t", {av("i") + ac(2)});
  pb.end_loop();
  pb.begin_loop("j", 0, 64);
  pb.stmt("consume", 1)
      .read("t", {av("j") + ac(1)})   // strictly behind the write front
      .read("t", {av("j") + ac(2)})   // exactly at the write front
      .write("dst", {av("j")});
  pb.end_loop();
  Program fused = fuse_nests(pb.finish(), 0);
  EXPECT_TRUE(validate(fused).empty());
}

TEST(Fusion, RejectsIndexOutOfRange) {
  Program p = fusable_pair(0);
  EXPECT_THROW(fuse_nests(p, 1), std::invalid_argument);
  EXPECT_THROW(fuse_nests(p, 7), std::invalid_argument);
}

TEST(Fusion, RejectsNonLoopTops) {
  ProgramBuilder pb("p");
  pb.stmt("lone", 1);
  pb.begin_loop("i", 0, 4);
  pb.stmt("s", 1);
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_THROW(fuse_nests(p, 0), std::invalid_argument);
}

TEST(Fusion, UnrelatedArraysAlwaysFusable) {
  ProgramBuilder pb("p");
  pb.array("a", {32}, 4).input();
  pb.array("b", {32}, 4).output();
  pb.begin_loop("i", 0, 32);
  pb.stmt("s0", 1).read("a", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 32);
  pb.stmt("s1", 1).write("b", {av("j")});
  pb.end_loop();
  EXPECT_NO_THROW(fuse_nests(pb.finish(), 0));
}

TEST(Fusion, EnablesCrossNestReuseThroughOneCopy) {
  // Before fusion: t is written in nest 0, read in nest 1 — no single-nest
  // copy candidate covers both, so the traffic goes through t's home layer.
  // After fusion the level-1 candidate serves producer and consumer, and
  // MHLA's optimized energy drops.
  ProgramBuilder pb("xreuse");
  pb.array("src", {4096}, 4).input();
  pb.array("t", {4096}, 4);
  pb.array("dst", {4096}, 4).output();
  pb.begin_loop("i", 0, 4096);
  pb.stmt("produce", 2).read("src", {av("i")}).write("t", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 4096);
  pb.stmt("consume", 2).read("t", {av("j")}, 4).write("dst", {av("j")});
  pb.end_loop();
  Program flat = pb.finish();
  Program fused = fuse_nests(flat, 0);

  mem::PlatformConfig platform;
  platform.l1_bytes = 1024;  // too small for t (16 KiB): copies must carry it
  platform.l2_bytes = 0;
  auto ws_flat = core::make_workspace(std::move(flat), platform, {});
  auto ws_fused = core::make_workspace(std::move(fused), platform, {});
  core::RunResult run_flat = core::run_mhla(*ws_flat);
  core::RunResult run_fused = core::run_mhla(*ws_fused);
  EXPECT_LE(run_fused.points.mhla.energy_nj, run_flat.points.mhla.energy_nj);
}

}  // namespace
}  // namespace mhla::ir
