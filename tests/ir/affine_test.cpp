#include "ir/affine.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mhla::ir {
namespace {

TEST(AffineExpr, DefaultIsZero) {
  AffineExpr e;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 0);
  EXPECT_EQ(e.evaluate({}), 0);
}

TEST(AffineExpr, ConstantConstruction) {
  AffineExpr e(42);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 42);
  EXPECT_EQ(e.evaluate({}), 42);
}

TEST(AffineExpr, VariableConstruction) {
  AffineExpr e = AffineExpr::variable("i", 3);
  EXPECT_FALSE(e.is_constant());
  EXPECT_EQ(e.coef("i"), 3);
  EXPECT_EQ(e.coef("j"), 0);
  EXPECT_EQ(e.evaluate({{"i", 5}}), 15);
}

TEST(AffineExpr, ZeroCoefficientVariableIsConstant) {
  AffineExpr e = AffineExpr::variable("i", 0);
  EXPECT_TRUE(e.is_constant());
}

TEST(AffineExpr, Addition) {
  AffineExpr e = av("i", 2) + av("j") + ac(7);
  EXPECT_EQ(e.coef("i"), 2);
  EXPECT_EQ(e.coef("j"), 1);
  EXPECT_EQ(e.constant(), 7);
  EXPECT_EQ(e.evaluate({{"i", 1}, {"j", 10}}), 19);
}

TEST(AffineExpr, AdditionMergesSameVariable) {
  AffineExpr e = av("i", 2) + av("i", 3);
  EXPECT_EQ(e.coef("i"), 5);
  EXPECT_EQ(e.terms().size(), 1u);
}

TEST(AffineExpr, CancellationRemovesTerm) {
  AffineExpr e = av("i", 2) + av("i", -2);
  EXPECT_TRUE(e.is_constant());
  EXPECT_TRUE(e.terms().empty());
}

TEST(AffineExpr, Subtraction) {
  AffineExpr e = av("i", 5) - av("j", 2) - ac(3);
  EXPECT_EQ(e.coef("i"), 5);
  EXPECT_EQ(e.coef("j"), -2);
  EXPECT_EQ(e.constant(), -3);
}

TEST(AffineExpr, ScalarMultiplication) {
  AffineExpr e = 3 * (av("i") + ac(2));
  EXPECT_EQ(e.coef("i"), 3);
  EXPECT_EQ(e.constant(), 6);
}

TEST(AffineExpr, MultiplicationByZeroClears) {
  AffineExpr e = 0 * (av("i", 7) + ac(9));
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 0);
}

TEST(AffineExpr, EvaluateThrowsOnUnboundVariable) {
  AffineExpr e = av("i");
  EXPECT_THROW(e.evaluate({{"j", 1}}), std::out_of_range);
}

TEST(AffineExpr, EvaluateIgnoresExtraBindings) {
  AffineExpr e = av("i");
  EXPECT_EQ(e.evaluate({{"i", 2}, {"zzz", 99}}), 2);
}

TEST(AffineExpr, Equality) {
  EXPECT_EQ(av("i", 2) + ac(1), ac(1) + av("i", 2));
  EXPECT_NE(av("i"), av("j"));
  EXPECT_NE(av("i"), av("i", 2));
}

TEST(AffineExpr, ToStringSimple) {
  EXPECT_EQ(av("i").to_string(), "i");
  EXPECT_EQ(ac(5).to_string(), "5");
  EXPECT_EQ(AffineExpr().to_string(), "0");
}

TEST(AffineExpr, ToStringComposite) {
  EXPECT_EQ((av("by", 16) + av("y") + ac(3)).to_string(), "16*by + y + 3");
  EXPECT_EQ((av("i") - ac(1)).to_string(), "i - 1");
  EXPECT_EQ((av("i", -2)).to_string(), "-2*i");
}

TEST(AffineExpr, NegativeEvaluation) {
  AffineExpr e = av("i", -4) + ac(2);
  EXPECT_EQ(e.evaluate({{"i", 3}}), -10);
}

}  // namespace
}  // namespace mhla::ir
