#include "ir/transform.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/reuse.h"
#include "analysis/sites.h"
#include "ir/builder.h"
#include "ir/validate.h"
#include "ir/walk.h"

namespace mhla::ir {
namespace {

Program row_sweep_program() {
  ProgramBuilder pb("rows");
  pb.array("a", {64, 64}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.begin_loop("j", 0, 64);
  pb.stmt("s", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.stmt("e", 1).write("out", {av("i")});
  pb.end_loop();
  return pb.finish();
}

TEST(TileLoop, PreservesInstancesAndValidity) {
  Program p = row_sweep_program();
  i64 before = dynamic_statement_instances(p);
  Program tiled = tile_loop(p, "i", 8);
  EXPECT_EQ(dynamic_statement_instances(tiled), before);
  EXPECT_TRUE(validate(tiled).empty());
}

TEST(TileLoop, CreatesTwoLoopsWithProduct) {
  Program tiled = tile_loop(row_sweep_program(), "i", 8);
  const LoopNode& outer = tiled.top()[0]->as_loop();
  EXPECT_EQ(outer.iter(), "i_o");
  EXPECT_EQ(outer.trip(), 8);
  const LoopNode& inner = outer.body()[0]->as_loop();
  EXPECT_EQ(inner.iter(), "i_i");
  EXPECT_EQ(inner.trip(), 8);
}

TEST(TileLoop, RewritesSubscripts) {
  Program tiled = tile_loop(row_sweep_program(), "i", 8);
  bool checked = false;
  walk_statements(tiled, [&](int, const LoopPath&, const StmtNode& stmt) {
    for (const ArrayAccess& access : stmt.accesses()) {
      if (access.array != "a") continue;
      // a[i][j] -> a[8*i_o + i_i][j]
      EXPECT_EQ(access.index[0].coef("i_o"), 8);
      EXPECT_EQ(access.index[0].coef("i_i"), 1);
      EXPECT_EQ(access.index[0].coef("i"), 0);
      checked = true;
    }
  });
  EXPECT_TRUE(checked);
}

TEST(TileLoop, HandlesNonZeroLowerAndStride) {
  ProgramBuilder pb("p");
  pb.array("a", {100}, 4);
  pb.begin_loop("i", 4, 68, 2);  // i in {4,6,...,66}, trip 32
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  Program tiled = tile_loop(p, "i", 4);
  EXPECT_TRUE(validate(tiled).empty());
  // Subscript becomes 2*(4*i_o + i_i) + 4 = 8*i_o + 2*i_i + 4.
  walk_statements(tiled, [&](int, const LoopPath&, const StmtNode& stmt) {
    const AffineExpr& idx = stmt.accesses()[0].index[0];
    EXPECT_EQ(idx.coef("i_o"), 8);
    EXPECT_EQ(idx.coef("i_i"), 2);
    EXPECT_EQ(idx.constant(), 4);
  });
  EXPECT_EQ(dynamic_statement_instances(tiled), 32);
}

TEST(TileLoop, RejectsNonDivisibleTile) {
  EXPECT_THROW(tile_loop(row_sweep_program(), "i", 7), std::invalid_argument);
}

TEST(TileLoop, RejectsUnknownIterator) {
  EXPECT_THROW(tile_loop(row_sweep_program(), "zzz", 8), std::invalid_argument);
}

TEST(TileLoop, RejectsNameClash) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("i_o", 0, 1);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_THROW(tile_loop(p, "i", 4), std::invalid_argument);
}

TEST(TileLoop, CreatesNewCopyCandidateLevels) {
  // Tiling must create a smaller copy candidate between whole-row and
  // element — the reason MHLA cares about tiling at all.
  Program p = row_sweep_program();
  Program tiled = tile_loop(p, "j", 8);

  auto candidate_sizes = [](const Program& program) {
    auto sites = analysis::collect_sites(program);
    auto reuse = analysis::ReuseAnalysis::run(program, sites);
    std::set<i64> sizes;
    for (const auto& cc : reuse.candidates()) {
      if (cc.array == "a") sizes.insert(cc.bytes);
    }
    return sizes;
  };
  std::set<i64> before = candidate_sizes(p);
  std::set<i64> after = candidate_sizes(tiled);
  // 8-element (32 B) tile candidate exists only after tiling.
  EXPECT_FALSE(before.count(32));
  EXPECT_TRUE(after.count(32));
}

TEST(Interchange, SwapsPerfectNest) {
  ProgramBuilder pb("p");
  pb.array("a", {16, 32}, 4);
  pb.begin_loop("i", 0, 16);
  pb.begin_loop("j", 0, 32);
  pb.stmt("s", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  Program p = pb.finish();
  Program swapped = interchange(p, "i");
  const LoopNode& outer = swapped.top()[0]->as_loop();
  EXPECT_EQ(outer.iter(), "j");
  EXPECT_EQ(outer.body()[0]->as_loop().iter(), "i");
  EXPECT_EQ(dynamic_statement_instances(swapped), dynamic_statement_instances(p));
  EXPECT_TRUE(validate(swapped).empty());
}

TEST(Interchange, RejectsImperfectNest) {
  Program p = row_sweep_program();  // loop i contains loop j AND a statement
  EXPECT_THROW(interchange(p, "i"), std::invalid_argument);
}

TEST(Interchange, RejectsInnermostLoop) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_THROW(interchange(p, "i"), std::invalid_argument);
}

TEST(Interchange, MovesReuseInward) {
  // b[j] reuse is carried by outer i; after interchange it is carried by
  // the (new) inner i, so the level-1 candidate shrinks to one element...
  // more usefully: the level-1 footprint of b becomes the whole row before,
  // single element after.
  ProgramBuilder pb("p");
  pb.array("b", {32}, 4);
  pb.begin_loop("i", 0, 16);
  pb.begin_loop("j", 0, 32);
  pb.stmt("s", 1).read("b", {av("j")});
  pb.end_loop();
  pb.end_loop();
  Program p = pb.finish();
  Program swapped = interchange(p, "i");

  auto level1_bytes = [](const Program& program) {
    auto sites = analysis::collect_sites(program);
    auto reuse = analysis::ReuseAnalysis::run(program, sites);
    for (const auto& cc : reuse.candidates()) {
      if (cc.array == "b" && cc.level == 1) return cc.bytes;
    }
    return i64{-1};
  };
  EXPECT_EQ(level1_bytes(p), 32 * 4);  // whole table under fixed i
  EXPECT_EQ(level1_bytes(swapped), 4);  // single element under fixed j
}

TEST(Substitute, AffineInAffine) {
  AffineExpr e = av("i", 3) + av("j") + ac(5);
  AffineExpr repl = av("a", 2) + ac(1);
  AffineExpr out = substitute(e, "i", repl);
  EXPECT_EQ(out.coef("a"), 6);
  EXPECT_EQ(out.coef("i"), 0);
  EXPECT_EQ(out.coef("j"), 1);
  EXPECT_EQ(out.constant(), 8);
}

TEST(Substitute, NoOccurrenceIsIdentity) {
  AffineExpr e = av("i") + ac(2);
  EXPECT_EQ(substitute(e, "q", av("z")), e);
}

}  // namespace
}  // namespace mhla::ir
