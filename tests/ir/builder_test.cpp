#include "ir/builder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mhla::ir {
namespace {

TEST(ProgramBuilder, DeclaresArrays) {
  ProgramBuilder pb("p");
  pb.array("a", {10, 20}, 2);
  pb.array("b", {5}, 4).input();
  Program p = pb.finish();
  ASSERT_EQ(p.arrays().size(), 2u);
  EXPECT_EQ(p.array("a").bytes(), 400);
  EXPECT_TRUE(p.array("b").is_input);
  EXPECT_FALSE(p.array("a").is_input);
}

TEST(ProgramBuilder, DuplicateArrayThrows) {
  ProgramBuilder pb("p");
  pb.array("a", {10}, 4);
  EXPECT_THROW(pb.array("a", {20}, 4), std::invalid_argument);
}

TEST(ProgramBuilder, DegenerateArrayThrows) {
  ProgramBuilder pb("p");
  EXPECT_THROW(pb.array("empty", {}, 4), std::invalid_argument);
  EXPECT_THROW(pb.array("zero", {0}, 4), std::invalid_argument);
  EXPECT_THROW(pb.array("badbytes", {4}, 0), std::invalid_argument);
}

TEST(ProgramBuilder, NestedLoops) {
  ProgramBuilder pb("p");
  pb.array("a", {8, 8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("j", 0, 8);
  pb.stmt("s", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  Program p = pb.finish();
  ASSERT_EQ(p.top().size(), 1u);
  const LoopNode& outer = p.top()[0]->as_loop();
  EXPECT_EQ(outer.iter(), "i");
  EXPECT_EQ(outer.trip(), 8);
  ASSERT_EQ(outer.body().size(), 1u);
  const LoopNode& inner = outer.body()[0]->as_loop();
  EXPECT_EQ(inner.iter(), "j");
  ASSERT_EQ(inner.body().size(), 1u);
  EXPECT_TRUE(inner.body()[0]->is_stmt());
}

TEST(ProgramBuilder, MultipleTopLevelNests) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 4);
  pb.stmt("s0", 1);
  pb.end_loop();
  pb.begin_loop("j", 0, 4);
  pb.stmt("s1", 1);
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_EQ(p.top().size(), 2u);
}

TEST(ProgramBuilder, StatementAtTopLevel) {
  ProgramBuilder pb("p");
  pb.stmt("init", 3);
  Program p = pb.finish();
  ASSERT_EQ(p.top().size(), 1u);
  EXPECT_EQ(p.top()[0]->as_stmt().op_cycles(), 3);
}

TEST(ProgramBuilder, ShadowedIteratorThrows) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 4);
  EXPECT_THROW(pb.begin_loop("i", 0, 4), std::logic_error);
}

TEST(ProgramBuilder, EndLoopWithoutOpenThrows) {
  ProgramBuilder pb("p");
  EXPECT_THROW(pb.end_loop(), std::logic_error);
}

TEST(ProgramBuilder, FinishWithOpenLoopThrows) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 4);
  EXPECT_THROW(pb.finish(), std::logic_error);
}

TEST(ProgramBuilder, SameIteratorReusableSequentially) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 4);
  pb.stmt("a", 1);
  pb.end_loop();
  pb.begin_loop("i", 0, 8);
  pb.stmt("b", 1);
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_EQ(p.top()[0]->as_loop().trip(), 4);
  EXPECT_EQ(p.top()[1]->as_loop().trip(), 8);
}

TEST(ProgramBuilder, StmtAccessKindsAndCounts) {
  ProgramBuilder pb("p");
  pb.array("a", {4}, 4);
  pb.begin_loop("i", 0, 4);
  pb.stmt("s", 1).read("a", {av("i")}, 3).write("a", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  const StmtNode& stmt = p.top()[0]->as_loop().body()[0]->as_stmt();
  ASSERT_EQ(stmt.accesses().size(), 2u);
  EXPECT_EQ(stmt.accesses()[0].kind, AccessKind::Read);
  EXPECT_EQ(stmt.accesses()[0].count, 3);
  EXPECT_EQ(stmt.accesses()[1].kind, AccessKind::Write);
}

TEST(LoopNode, TripCounts) {
  EXPECT_EQ(LoopNode("i", 0, 10).trip(), 10);
  EXPECT_EQ(LoopNode("i", 2, 10).trip(), 8);
  EXPECT_EQ(LoopNode("i", 0, 10, 3).trip(), 4);  // 0,3,6,9
  EXPECT_EQ(LoopNode("i", 5, 5).trip(), 0);
  EXPECT_EQ(LoopNode("i", 10, 5).trip(), 0);
}

TEST(Node, AsLoopOnStmtThrows) {
  StmtNode stmt("s", 1);
  EXPECT_THROW(stmt.as_loop(), std::logic_error);
  LoopNode loop("i", 0, 4);
  EXPECT_THROW(loop.as_stmt(), std::logic_error);
}

TEST(Program, FindArray) {
  ProgramBuilder pb("p");
  pb.array("a", {4}, 4);
  Program p = pb.finish();
  EXPECT_NE(p.find_array("a"), nullptr);
  EXPECT_EQ(p.find_array("zzz"), nullptr);
  EXPECT_THROW(p.array("zzz"), std::out_of_range);
}

TEST(Program, TotalArrayBytes) {
  ProgramBuilder pb("p");
  pb.array("a", {4}, 4);    // 16
  pb.array("b", {8, 2}, 1); // 16
  Program p = pb.finish();
  EXPECT_EQ(p.total_array_bytes(), 32);
}

}  // namespace
}  // namespace mhla::ir
