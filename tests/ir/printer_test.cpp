#include "ir/printer.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::ir {
namespace {

TEST(Printer, ContainsArraysLoopsAndAccesses) {
  ProgramBuilder pb("demo");
  pb.array("img", {16, 16}, 1).input();
  pb.array("out", {16}, 2).output();
  pb.begin_loop("i", 0, 16);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 2).read("img", {av("i"), av("j")});
  pb.end_loop();
  pb.stmt("e", 1).write("out", {av("i")});
  pb.end_loop();
  Program p = pb.finish();

  std::string text = to_string(p);
  EXPECT_NE(text.find("program demo"), std::string::npos);
  EXPECT_NE(text.find("array img[16][16]"), std::string::npos);
  EXPECT_NE(text.find("input"), std::string::npos);
  EXPECT_NE(text.find("output"), std::string::npos);
  EXPECT_NE(text.find("for (i = 0; i < 16; i += 1)"), std::string::npos);
  EXPECT_NE(text.find("read img[i][j]"), std::string::npos);
  EXPECT_NE(text.find("write out[i]"), std::string::npos);
}

TEST(Printer, AccessCountAnnotation) {
  ProgramBuilder pb("p");
  pb.array("a", {4}, 4);
  pb.begin_loop("i", 0, 4);
  pb.stmt("s", 1).read("a", {av("i")}, 2);
  pb.end_loop();
  std::string text = to_string(pb.finish());
  EXPECT_NE(text.find("x2"), std::string::npos);
}

TEST(Printer, NodeOverloadIndents) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 2);
  pb.stmt("s", 1);
  pb.end_loop();
  Program p = pb.finish();
  std::string text = to_string(*p.top()[0], 1);
  EXPECT_EQ(text.rfind("  for", 0), 0u);  // starts with one indent level
}

}  // namespace
}  // namespace mhla::ir
