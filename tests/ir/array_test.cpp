#include "ir/array.h"

#include <gtest/gtest.h>

namespace mhla::ir {
namespace {

TEST(ArrayDecl, ElemsAndBytes1D) {
  ArrayDecl a{"v", {100}, 4};
  EXPECT_EQ(a.elems(), 100);
  EXPECT_EQ(a.bytes(), 400);
  EXPECT_EQ(a.rank(), 1);
}

TEST(ArrayDecl, ElemsAndBytes3D) {
  ArrayDecl a{"t", {8, 16, 4}, 2};
  EXPECT_EQ(a.elems(), 8 * 16 * 4);
  EXPECT_EQ(a.bytes(), 8 * 16 * 4 * 2);
  EXPECT_EQ(a.rank(), 3);
}

TEST(ArrayDecl, SingleByteElements) {
  ArrayDecl a{"img", {144, 176}, 1};
  EXPECT_EQ(a.bytes(), 144 * 176);
}

TEST(ArrayDecl, InputOutputFlagsDefaultFalse) {
  ArrayDecl a{"x", {4}, 4};
  EXPECT_FALSE(a.is_input);
  EXPECT_FALSE(a.is_output);
}

}  // namespace
}  // namespace mhla::ir
