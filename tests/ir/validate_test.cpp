#include "ir/validate.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ir/builder.h"

namespace mhla::ir {
namespace {

TEST(Validate, CleanProgramHasNoIssues) {
  ProgramBuilder pb("p");
  pb.array("a", {8, 8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("j", 0, 8);
  pb.stmt("s", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_TRUE(validate(p).empty());
  EXPECT_NO_THROW(validate_or_throw(p));
}

TEST(Validate, UndeclaredArray) {
  ProgramBuilder pb("p");
  pb.begin_loop("i", 0, 4);
  pb.stmt("s", 1).read("ghost", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  auto issues = validate(p);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("undeclared"), std::string::npos);
  EXPECT_THROW(validate_or_throw(p), std::invalid_argument);
}

TEST(Validate, RankMismatch) {
  ProgramBuilder pb("p");
  pb.array("a", {8, 8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});  // rank 1 vs 2
  pb.end_loop();
  Program p = pb.finish();
  auto issues = validate(p);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("rank"), std::string::npos);
}

TEST(Validate, UnboundSubscriptVariable) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("q")});
  pb.end_loop();
  Program p = pb.finish();
  auto issues = validate(p);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("not bound"), std::string::npos);
}

TEST(Validate, SubscriptOverrun) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 9);  // i = 8 overruns
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  auto issues = validate(p);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("outside"), std::string::npos);
}

TEST(Validate, SubscriptUnderrun) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i") - ac(1)});  // i=0 -> -1
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validate, OffsetLoopBoundsAreRespected) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 1, 8);
  pb.stmt("s", 1).read("a", {av("i") - ac(1)});  // i=1..7 -> 0..6, fine
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, NegativeCoefficientBounds) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i", -1) + ac(7)});  // 7-i in 0..7, fine
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, StridedLoopExtremes) {
  ProgramBuilder pb("p");
  pb.array("a", {16}, 4);
  pb.begin_loop("i", 0, 16, 4);  // i in {0,4,8,12}
  pb.stmt("s", 1).read("a", {av("i") + ac(3)});  // max 15, fine
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, NonPositiveAccessCount) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")}, 0);
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validate, MultipleIssuesAllReported) {
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 9);
  pb.stmt("s", 1).read("a", {av("i")}).read("ghost", {av("i")});
  pb.end_loop();
  Program p = pb.finish();
  EXPECT_GE(validate(p).size(), 2u);
}

TEST(Validate, AllNineAppsPassValidation) {
  // The app builders call validate_or_throw internally; this double-checks
  // from the outside and guards against builders dropping the call.
  // (Detailed per-app structure is covered in apps_tests.)
  ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  EXPECT_NO_THROW(validate_or_throw(pb.finish()));
}

}  // namespace
}  // namespace mhla::ir
