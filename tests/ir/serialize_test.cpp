#include "ir/serialize.h"

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::ir {
namespace {

TEST(FormatAffine, Compact) {
  EXPECT_EQ(format_affine(av("i")), "i");
  EXPECT_EQ(format_affine(av("i", 16) + av("j") + ac(3)), "16*i+j+3");
  EXPECT_EQ(format_affine(av("i") - ac(1)), "i-1");
  EXPECT_EQ(format_affine(av("i", -2)), "-2*i");
  EXPECT_EQ(format_affine(ac(0)), "0");
  EXPECT_EQ(format_affine(ac(-7)), "-7");
}

TEST(ParseAffine, BasicForms) {
  EXPECT_EQ(parse_affine("i"), av("i"));
  EXPECT_EQ(parse_affine("16*i+j+3"), av("i", 16) + av("j") + ac(3));
  EXPECT_EQ(parse_affine("i-1"), av("i") - ac(1));
  EXPECT_EQ(parse_affine("-2*i"), av("i", -2));
  EXPECT_EQ(parse_affine("0"), ac(0));
  EXPECT_EQ(parse_affine("-7"), ac(-7));
}

TEST(ParseAffine, ToleratesSpaces) {
  EXPECT_EQ(parse_affine(" 16*i + j - 3 "), av("i", 16) + av("j") - ac(3));
}

TEST(ParseAffine, MergesRepeatedVariables) {
  EXPECT_EQ(parse_affine("i+i+i"), av("i", 3));
  EXPECT_EQ(parse_affine("2*i-i"), av("i"));
}

TEST(ParseAffine, Rejections) {
  EXPECT_THROW(parse_affine("i+"), std::invalid_argument);
  EXPECT_THROW(parse_affine("++i"), std::invalid_argument);  // '+' with no term yet
  EXPECT_THROW(parse_affine("3*"), std::invalid_argument);
  EXPECT_THROW(parse_affine("i j"), std::invalid_argument);
  EXPECT_THROW(parse_affine("a[b]"), std::invalid_argument);
}

TEST(ParseAffine, RoundTripsRandomizedShapes) {
  const AffineExpr cases[] = {
      ac(0), ac(42), ac(-3), av("x"), av("x", -1),
      av("by", 16) + av("my") + av("y") - ac(8),
      av("a", 100) - av("b", 99) + ac(1),
  };
  for (const AffineExpr& e : cases) {
    EXPECT_EQ(parse_affine(format_affine(e)), e) << format_affine(e);
  }
}

TEST(Serialize, ContainsEverything) {
  ProgramBuilder pb("demo");
  pb.array("img", {16, 16}, 1).input();
  pb.array("out", {16}, 2).output();
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 2).read("img", {av("i"), av("i") + ac(1)}, 3).write("out", {av("i")});
  pb.end_loop();
  std::string text = serialize(pb.finish());
  EXPECT_NE(text.find("program demo"), std::string::npos);
  EXPECT_NE(text.find("array img 16 16 : elem 1 input"), std::string::npos);
  EXPECT_NE(text.find("array out 16 : elem 2 output"), std::string::npos);
  EXPECT_NE(text.find("loop i 0 16 1 {"), std::string::npos);
  EXPECT_NE(text.find("stmt s ops 2 {"), std::string::npos);
  EXPECT_NE(text.find("read img [i] [i+1] x3"), std::string::npos);
  EXPECT_NE(text.find("write out [i]"), std::string::npos);
}

void expect_round_trip(const Program& program) {
  std::string once = serialize(program);
  Program parsed = parse_program(once);
  std::string twice = serialize(parsed);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(parsed.name(), program.name());
  EXPECT_EQ(parsed.arrays().size(), program.arrays().size());
  EXPECT_TRUE(validate(parsed).empty());
}

TEST(Serialize, RoundTripSimple) {
  ProgramBuilder pb("rt");
  pb.array("a", {8, 8}, 4).input();
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("j", 0, 8, 2);
  pb.stmt("s", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  expect_round_trip(pb.finish());
}

class AppRoundTrip : public ::testing::TestWithParam<apps::AppInfo> {};

TEST_P(AppRoundTrip, SerializeParseSerializeIsIdentity) {
  expect_round_trip(GetParam().build());
}

INSTANTIATE_TEST_SUITE_P(AllNine, AppRoundTrip, ::testing::ValuesIn(apps::all_apps()),
                         [](const ::testing::TestParamInfo<apps::AppInfo>& info) {
                           return info.param.name;
                         });

TEST(Parse, CommentsAndBlankLinesIgnored) {
  Program p = parse_program(
      "program p\n"
      "# a comment\n"
      "array a 4 : elem 4\n"
      "\n"
      "loop i 0 4 1 {\n"
      "  stmt s ops 1 {\n"
      "    read a [i]\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(p.arrays().size(), 1u);
  EXPECT_EQ(p.top().size(), 1u);
}

TEST(Parse, Rejections) {
  EXPECT_THROW(parse_program("not_a_program\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("program p\narray a : elem 4\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("program p\nloop i 0 4 1 {\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("program p\nloop i 0 4 1 {\n  bogus\n}\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("program p\narray a 4 : elem 4 banana\n"), std::invalid_argument);
  EXPECT_THROW(
      parse_program("program p\nstmt s ops 1 {\n  jump a [0]\n}\n"), std::invalid_argument);
}

TEST(Parse, StmtWithoutBraceRejected) {
  EXPECT_THROW(parse_program("program p\nstmt s ops 1\n"), std::invalid_argument);
}

}  // namespace
}  // namespace mhla::ir
