#include "ir/walk.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::ir {
namespace {

Program two_nest_program() {
  ProgramBuilder pb("p");
  pb.array("a", {16, 16}, 4);
  pb.begin_loop("i", 0, 4);
  pb.begin_loop("j", 0, 8);
  pb.stmt("s0", 1).read("a", {av("i"), av("j")});
  pb.end_loop();
  pb.stmt("s1", 1);
  pb.end_loop();
  pb.begin_loop("k", 0, 3);
  pb.stmt("s2", 1);
  pb.end_loop();
  return pb.finish();
}

TEST(Walk, VisitsAllStatementsInProgramOrder) {
  Program p = two_nest_program();
  std::vector<std::string> names;
  std::vector<int> nests;
  walk_statements(p, [&](int nest, const LoopPath&, const StmtNode& stmt) {
    names.push_back(stmt.name());
    nests.push_back(nest);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"s0", "s1", "s2"}));
  EXPECT_EQ(nests, (std::vector<int>{0, 0, 1}));
}

TEST(Walk, PathReflectsNesting) {
  Program p = two_nest_program();
  walk_statements(p, [&](int, const LoopPath& path, const StmtNode& stmt) {
    if (stmt.name() == "s0") {
      ASSERT_EQ(path.size(), 2u);
      EXPECT_EQ(path[0]->iter(), "i");
      EXPECT_EQ(path[1]->iter(), "j");
    } else if (stmt.name() == "s1") {
      ASSERT_EQ(path.size(), 1u);
      EXPECT_EQ(path[0]->iter(), "i");
    } else {
      ASSERT_EQ(path.size(), 1u);
      EXPECT_EQ(path[0]->iter(), "k");
    }
  });
}

TEST(Walk, SingleNodeOverload) {
  Program p = two_nest_program();
  int count = 0;
  walk_statements(*p.top()[0], [&](const LoopPath&, const StmtNode&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(Walk, IterationsOfPath) {
  Program p = two_nest_program();
  walk_statements(p, [&](int, const LoopPath& path, const StmtNode& stmt) {
    if (stmt.name() == "s0") {
      EXPECT_EQ(iterations_of(path), 32);
      EXPECT_EQ(iterations_of(path, 1), 4);
      EXPECT_EQ(iterations_of(path, 0), 1);
      EXPECT_EQ(iterations_of(path, 99), 32);  // clamped
    }
  });
}

TEST(Walk, TopLevelStatementHasEmptyPath) {
  ProgramBuilder pb("p");
  pb.stmt("top", 1);
  Program p = pb.finish();
  walk_statements(p, [&](int nest, const LoopPath& path, const StmtNode&) {
    EXPECT_EQ(nest, 0);
    EXPECT_TRUE(path.empty());
    EXPECT_EQ(iterations_of(path), 1);
  });
}

}  // namespace
}  // namespace mhla::ir
