#ifndef _WIN32

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include "apps/registry.h"
#include "core/json.h"
#include "helpers.h"
#include "obs/metrics.h"
#include "ir/serialize.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace mhla::serve {
namespace {

using core::Json;

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// One protocol connection against a Server under test.
class TestClient {
 public:
  explicit TestClient(int port)
      : socket_(connect_to("127.0.0.1", port)), reader_(socket_) {}

  void send(const Request& request) { ASSERT_TRUE(write_line(socket_, to_json(request))); }
  void send_raw(const std::string& line) { ASSERT_TRUE(write_line(socket_, line)); }

  /// Next event object; fails the test on EOF.
  Json next() {
    std::string line;
    if (!reader_.read_line(line)) throw std::runtime_error("server closed the connection");
    return Json::parse(line);
  }

  /// Skip events until one named `name` arrives (a frontier stream may be
  /// interleaved before the terminal event).  An unexpected `error` event
  /// fails immediately — waiting past it would block forever.
  Json next_named(const std::string& name) {
    for (;;) {
      Json event = next();
      const std::string& got = event.at("event").string();
      if (got == name) return event;
      if (got == "error") {
        throw std::runtime_error("server error while waiting for '" + name +
                                 "': " + event.at("message").string());
      }
    }
  }

 private:
  Socket socket_;
  LineReader reader_;
};

Request submit_request(const ir::Program& program) {
  Request request;
  request.command = Command::Submit;
  request.program_text = ir::serialize(program);
  request.config.platform = mhla::testing::small_platform();
  request.has_config = true;
  return request;
}

Request explore_request(const ir::Program& program) {
  Request request;
  request.command = Command::Explore;
  request.program_text = ir::serialize(program);
  request.config.platform = mhla::testing::small_platform();
  request.has_config = true;
  request.explore.l1_axis = {128, 256, 512, 1024, 2048};
  request.explore.l2_axis = {0, 8192};
  return request;
}

TEST(Server, SubmitColdThenWarmFromCache) {
  Server server({});
  TestClient client(server.port());

  Request request = submit_request(mhla::testing::tiny_stream_program());
  client.send(request);
  Json accepted = client.next_named("accepted");
  EXPECT_EQ(accepted.at("command").string(), "submit");

  Json cold = client.next_named("done");
  EXPECT_EQ(cold.at("kind").string(), "submit");
  EXPECT_EQ(cold.at("state").string(), "done");
  EXPECT_FALSE(cold.at("from_cache").boolean());
  EXPECT_EQ(cold.at("evaluations").integer(), 1);
  EXPECT_GT(cold.at("cycles").number(), 0.0);

  // The warm re-submit must be answered from the concurrent cache with
  // zero pipeline evaluations and the identical measured pair.
  client.send(request);
  client.next_named("accepted");
  Json warm = client.next_named("done");
  EXPECT_EQ(warm.at("state").string(), "done");
  EXPECT_TRUE(warm.at("from_cache").boolean());
  EXPECT_EQ(warm.at("evaluations").integer(), 0);
  EXPECT_EQ(warm.at("cycles").number(), cold.at("cycles").number());
  EXPECT_EQ(warm.at("energy_nj").number(), cold.at("energy_nj").number());
  EXPECT_EQ(warm.at("status").string(), cold.at("status").string());
}

TEST(Server, ExploreStreamsFrontierEventsAndWarmReplayEvaluatesNothing) {
  Server server({});
  TestClient client(server.port());

  Request request = explore_request(mhla::testing::blocked_reuse_program());
  client.send(request);
  client.next_named("accepted");

  // At least one incremental frontier event must precede the terminal done.
  std::size_t frontier_events = 0;
  Json done;
  for (;;) {
    Json event = client.next();
    const std::string& name = event.at("event").string();
    if (name == "frontier") {
      ++frontier_events;
      EXPECT_FALSE(event.at("frontier").array().empty());
    } else if (name == "done") {
      done = std::move(event);
      break;
    }
  }
  EXPECT_GE(frontier_events, 1u);
  EXPECT_EQ(done.at("kind").string(), "explore");
  EXPECT_EQ(done.at("state").string(), "done");
  EXPECT_GT(done.at("evaluations").integer(), 0);
  EXPECT_GT(done.at("frontier_size").integer(), 0);

  // Warm replay: the identical exploration answered entirely from cache.
  client.send(request);
  client.next_named("accepted");
  Json warm = client.next_named("done");
  EXPECT_EQ(warm.at("evaluations").integer(), 0);
  EXPECT_EQ(warm.at("cache_hits").integer(), warm.at("samples").integer());
  EXPECT_EQ(warm.at("frontier_size").integer(), done.at("frontier_size").integer());

  // A submit of one explored cell is answered from the explore-warmed cache.
  Request submit = submit_request(mhla::testing::blocked_reuse_program());
  submit.config.platform.l1_bytes = 1024;
  submit.config.platform.l2_bytes = 8192;
  client.send(submit);
  client.next_named("accepted");
  Json cross = client.next_named("done");
  EXPECT_TRUE(cross.at("from_cache").boolean());
  EXPECT_EQ(cross.at("evaluations").integer(), 0);
}

TEST(Server, CancelMidFlightEndsBudgetExhaustedWithCertifiedGap) {
  ServerConfig config;
  Server server(config);
  TestClient client(server.port());

  // A genuinely long-running exact search: a real app on the default
  // platform with the state cap effectively removed, so only the cancel
  // (or the 60 s deadline backstop that keeps a broken cancel from
  // hanging the suite) can stop it.
  Request request;
  request.command = Command::Submit;
  request.program_text = ir::serialize(apps::build_app("mpeg2_encoder"));
  request.config.strategy = "bnb";
  request.config.search.max_states = 2'000'000'000L;
  request.config.search.budget.deadline_seconds = 60.0;
  request.has_config = true;

  const auto start = std::chrono::steady_clock::now();
  client.send(request);
  Json accepted = client.next_named("accepted");
  const std::uint64_t job = static_cast<std::uint64_t>(accepted.at("job").integer());

  // Let the search get past its root bound, then cancel from a second
  // connection (cancel must work across connections).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  TestClient canceller(server.port());
  Request cancel;
  cancel.command = Command::Cancel;
  cancel.job = job;
  cancel.has_job = true;
  canceller.send(cancel);
  Json ack = canceller.next_named("cancelled");
  EXPECT_TRUE(ack.at("found").boolean());

  Json done = client.next_named("done");
  EXPECT_EQ(done.at("state").string(), "cancelled");
  EXPECT_EQ(done.at("status").string(), "budget_exhausted");
  EXPECT_GE(done.at("gap").number(), 0.0) << "an exact engine must certify its gap";
  EXPECT_FALSE(done.at("from_cache").boolean());

  // If the cancel had not reached the search, only the 60 s deadline could
  // have ended it — so a prompt finish is the proof the cancel bound.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 30.0) << "job only ended via the deadline backstop, not the cancel";

  // A budget-truncated result must not have poisoned the cache: the same
  // submit without the cancel must actually evaluate.
  EXPECT_EQ(server.cache().stats().entries, 0u);
}

TEST(Server, StatusAndCacheStatsReportJobsAndCounters) {
  Server server({});
  TestClient client(server.port());

  client.send(submit_request(mhla::testing::producer_consumer_program()));
  Json accepted = client.next_named("accepted");
  client.next_named("done");

  Request status;
  status.command = Command::Status;
  client.send(status);
  Json report = client.next_named("status");
  ASSERT_EQ(report.at("jobs").array().size(), 1u);
  const Json& row = report.at("jobs").array()[0];
  EXPECT_EQ(row.at("job").integer(), accepted.at("job").integer());
  EXPECT_EQ(row.at("command").string(), "submit");
  EXPECT_EQ(row.at("state").string(), "done");

  Request stats;
  stats.command = Command::CacheStats;
  client.send(stats);
  Json counters = client.next_named("cache_stats");
  EXPECT_EQ(counters.at("entries").integer(), 1);
  EXPECT_GE(counters.at("insertions").integer(), 1);
  EXPECT_GE(counters.at("shards").integer(), 1);
}

TEST(Server, MetricsVerbReportsJobQueueCacheAndConnectionCounters) {
  Server server({});
  TestClient client(server.port());

  // Cold submit then warm re-submit: one evaluation, one cache hit.
  Request request = submit_request(mhla::testing::tiny_stream_program());
  client.send(request);
  client.next_named("done");
  client.send(request);
  client.next_named("done");

  Request metrics;
  metrics.command = Command::Metrics;
  client.send(metrics);
  Json view = client.next_named("metrics");
  EXPECT_EQ(view.at("jobs_accepted").integer(), 2);
  EXPECT_EQ(view.at("jobs_done").integer(), 2);
  EXPECT_EQ(view.at("jobs_failed").integer(), 0);
  EXPECT_EQ(view.at("queue_depth").integer(), 0);
  EXPECT_GE(view.at("connections").integer(), 1);
  EXPECT_GT(view.at("bytes_sent").integer(), 0);
  EXPECT_GE(view.at("lines_sent").integer(), 4);  // 2x accepted + 2x done so far
  EXPECT_GT(view.at("uptime_seconds").number(), 0.0);
  EXPECT_EQ(view.at("cache").at("entries").integer(), 1);
  EXPECT_GE(view.at("cache").at("hits").integer(), 1);

  // The same cells feed the process-wide registry through the server's
  // sources — one source of truth, two doors.
  EXPECT_EQ(server.metrics_view().jobs_done, 2u);
  obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  auto counter = [&snap](const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return static_cast<std::int64_t>(v);
    }
    return -1;
  };
  EXPECT_EQ(counter("serve.jobs_done"), 2);
  EXPECT_EQ(counter("serve.jobs_accepted"), 2);
  EXPECT_GE(counter("serve.cache.hits"), 1);
}

TEST(Server, StatsStreamBroadcastsToSubscribedConnections) {
  ServerConfig config;
  config.stats_interval_seconds = 0.05;
  Server server(config);
  TestClient client(server.port());

  Request subscribe;
  subscribe.command = Command::Metrics;
  subscribe.stream_stats = true;
  client.send(subscribe);
  client.next_named("metrics");  // the immediate snapshot always comes first

  // Periodic stats lines then arrive without any further request.
  Json first = client.next_named("stats");
  EXPECT_GE(first.at("uptime_seconds").number(), 0.0);
  Json second = client.next_named("stats");
  EXPECT_GE(second.at("uptime_seconds").number(), first.at("uptime_seconds").number());
}

TEST(Server, MalformedRequestsYieldErrorEventsAndKeepTheConnection) {
  Server server({});
  TestClient client(server.port());

  client.send_raw("this is not json");
  EXPECT_EQ(client.next().at("event").string(), "error");

  client.send_raw(R"({"cmd": "frobnicate"})");
  Json unknown = client.next();
  EXPECT_EQ(unknown.at("event").string(), "error");
  EXPECT_NE(unknown.at("message").string().find("unknown command"), std::string::npos);

  // A submit whose program fails to parse is rejected before queueing.
  Request bad = submit_request(mhla::testing::tiny_stream_program());
  bad.program_text = "array oops {";
  client.send(bad);
  EXPECT_EQ(client.next().at("event").string(), "error");

  // Cancel of an unknown job acknowledges found=false.
  Request cancel;
  cancel.command = Command::Cancel;
  cancel.job = 12345;
  cancel.has_job = true;
  client.send(cancel);
  Json ack = client.next_named("cancelled");
  EXPECT_FALSE(ack.at("found").boolean());

  // The connection survived all of it.
  Request status;
  status.command = Command::Status;
  client.send(status);
  EXPECT_EQ(client.next().at("event").string(), "status");
}

TEST(Server, ShutdownVerbDrainsAndPersistsForAWarmRestart) {
  const std::string cache_path = temp_path("mhla_server_restart_cache.json");
  Json cold_done;
  {
    ServerConfig config;
    config.cache_path = cache_path;
    Server server(config);
    TestClient client(server.port());

    client.send(submit_request(mhla::testing::tiny_stream_program()));
    client.next_named("accepted");
    cold_done = client.next_named("done");
    EXPECT_FALSE(cold_done.at("from_cache").boolean());

    Request shutdown;
    shutdown.command = Command::Shutdown;
    client.send(shutdown);
    EXPECT_EQ(client.next_named("shutdown").at("event").string(), "shutdown");
    EXPECT_TRUE(server.wait_for(10.0)) << "shutdown verb must request the stop";
    server.stop();
  }

  // A new server over the same cache document answers the same submit from
  // cache without a single pipeline evaluation.
  {
    ServerConfig config;
    config.cache_path = cache_path;
    Server server(config);
    EXPECT_EQ(server.cache().size(), 1u);
    TestClient client(server.port());
    client.send(submit_request(mhla::testing::tiny_stream_program()));
    client.next_named("accepted");
    Json warm = client.next_named("done");
    EXPECT_TRUE(warm.at("from_cache").boolean());
    EXPECT_EQ(warm.at("evaluations").integer(), 0);
    EXPECT_EQ(warm.at("cycles").number(), cold_done.at("cycles").number());
  }
  std::remove(cache_path.c_str());
}

TEST(Server, JobRetentionBoundsTheRegistryAndCountersSumToAccepted) {
  ServerConfig config;
  config.job_retention = 2;
  Server server(config);
  TestClient client(server.port());

  // Six sequential submits, each awaited to its terminal event.
  Request request = submit_request(mhla::testing::tiny_stream_program());
  std::uint64_t last_job = 0;
  for (int i = 0; i < 6; ++i) {
    client.send(request);
    Json accepted = client.next_named("accepted");
    last_job = static_cast<std::uint64_t>(accepted.at("job").integer());
    client.next_named("done");
  }

  // The registry holds only the retention window, not all six jobs — the
  // counters, not the map, carry the full history.
  Request metrics;
  metrics.command = Command::Metrics;
  client.send(metrics);
  Json view = client.next_named("metrics");
  EXPECT_EQ(view.at("jobs_accepted").integer(), 6);
  EXPECT_EQ(view.at("jobs_tracked").integer(), 2);
  EXPECT_EQ(view.at("jobs_accepted").integer(),
            view.at("jobs_done").integer() + view.at("jobs_failed").integer() +
                view.at("jobs_cancelled").integer());

  // `status` still answers for the retained recent jobs ...
  Request status;
  status.command = Command::Status;
  client.send(status);
  Json report = client.next_named("status");
  ASSERT_EQ(report.at("jobs").array().size(), 2u);
  EXPECT_EQ(report.at("jobs").array()[1].at("job").integer(),
            static_cast<std::int64_t>(last_job));

  // ... and reports a pruned id as unknown (empty row set), like any
  // id the server never saw.
  status.job = 1;  // the first job, two retention windows ago
  status.has_job = true;
  client.send(status);
  EXPECT_TRUE(client.next_named("status").at("jobs").array().empty());
}

TEST(Server, CancelWhileQueuedEmitsImmediateTerminalEvent) {
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  TestClient client(server.port());

  // Occupy the single worker with a genuinely long exact search (60 s
  // deadline as the backstop against a broken cancel hanging the suite).
  Request blocker;
  blocker.command = Command::Submit;
  blocker.program_text = ir::serialize(apps::build_app("mpeg2_encoder"));
  blocker.config.strategy = "bnb";
  blocker.config.search.max_states = 2'000'000'000L;
  blocker.config.search.budget.deadline_seconds = 60.0;
  blocker.has_config = true;
  client.send(blocker);
  const std::uint64_t running =
      static_cast<std::uint64_t>(client.next_named("accepted").at("job").integer());

  // A second job now sits in the queue with no worker to claim it.
  client.send(submit_request(mhla::testing::tiny_stream_program()));
  const std::uint64_t queued =
      static_cast<std::uint64_t>(client.next_named("accepted").at("job").integer());

  // Cancelling the queued job must not wait for the worker: the ack and the
  // terminal event both arrive while the blocker is still running.
  Request cancel;
  cancel.command = Command::Cancel;
  cancel.job = queued;
  cancel.has_job = true;
  client.send(cancel);
  Json ack = client.next_named("cancelled");
  EXPECT_TRUE(ack.at("found").boolean());
  Json done = client.next_named("done");
  EXPECT_EQ(static_cast<std::uint64_t>(done.at("job").integer()), queued);
  EXPECT_EQ(done.at("state").string(), "cancelled");
  EXPECT_EQ(done.at("kind").string(), "cancelled");
  EXPECT_EQ(server.metrics_view().jobs_cancelled, 1u);

  // Now release the worker and check the books: both jobs terminal, the
  // counters summing exactly to the accepted count.
  cancel.job = running;
  client.send(cancel);
  client.next_named("cancelled");
  Json blocker_done = client.next_named("done");
  EXPECT_EQ(static_cast<std::uint64_t>(blocker_done.at("job").integer()), running);
  ServerMetricsView view = server.metrics_view();
  EXPECT_EQ(view.jobs_accepted,
            view.jobs_done + view.jobs_failed + view.jobs_cancelled);
}

TEST(Server, StopWithQueuedWorkCancelsCleanly) {
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  TestClient client(server.port());

  // More jobs than workers, then tear the server down mid-queue: stop()
  // must cancel what is running, drain the queue and still join cleanly.
  Request request = submit_request(mhla::testing::blocked_reuse_program());
  for (int i = 0; i < 4; ++i) {
    client.send(request);
    client.next_named("accepted");
  }
  server.stop();

  // Every accepted job reached a terminal state and was counted exactly
  // once: finished before the stop, cancelled mid-run through its budget,
  // or dropped from the queue by close() — the invariant the shutdown and
  // cancel races used to break.
  ServerMetricsView view = server.metrics_view();
  EXPECT_EQ(view.jobs_accepted, 4u);
  EXPECT_EQ(view.jobs_accepted,
            view.jobs_done + view.jobs_failed + view.jobs_cancelled);
  EXPECT_EQ(view.queue_depth, 0);
}

}  // namespace
}  // namespace mhla::serve

#endif  // _WIN32
