#include "serve/protocol.h"

#include <gtest/gtest.h>

#ifndef _WIN32
#include <sys/socket.h>
#endif

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "ir/serialize.h"
#include "serve/framing.h"
#include "serve/socket.h"
#include "helpers.h"

namespace mhla::serve {
namespace {

using core::Json;

// --- Request parsing ---------------------------------------------------------

TEST(Protocol, ParsesMinimalRequestsForEveryCommand) {
  EXPECT_EQ(parse_request(R"({"cmd": "status"})").command, Command::Status);
  EXPECT_EQ(parse_request(R"({"cmd": "cache_stats"})").command, Command::CacheStats);
  EXPECT_EQ(parse_request(R"({"cmd": "metrics"})").command, Command::Metrics);
  EXPECT_EQ(parse_request(R"({"cmd": "shutdown"})").command, Command::Shutdown);

  Request cancel = parse_request(R"({"cmd": "cancel", "job": 7})");
  EXPECT_EQ(cancel.command, Command::Cancel);
  EXPECT_TRUE(cancel.has_job);
  EXPECT_EQ(cancel.job, 7u);

  Request submit = parse_request(R"({"cmd": "submit", "program": "stream copy {}"})");
  EXPECT_EQ(submit.command, Command::Submit);
  EXPECT_EQ(submit.program_text, "stream copy {}");
  EXPECT_FALSE(submit.has_config);
}

TEST(Protocol, ParsesExploreOperands) {
  Request request = parse_request(
      R"({"cmd": "explore", "program": "p", "l1_axis": [128, 256], "l2_axis": [0, 8192],)"
      R"( "strategies": ["greedy", "bnb"], "explore_te": true, "seed_stride": 3,)"
      R"( "budget": 40})");
  EXPECT_EQ(request.command, Command::Explore);
  EXPECT_EQ(request.explore.l1_axis, (std::vector<xplore::i64>{128, 256}));
  EXPECT_EQ(request.explore.l2_axis, (std::vector<xplore::i64>{0, 8192}));
  EXPECT_EQ(request.explore.strategies, (std::vector<std::string>{"greedy", "bnb"}));
  EXPECT_TRUE(request.explore.explore_te);
  EXPECT_EQ(request.explore.seed_stride, 3u);
  EXPECT_EQ(request.explore.budget, 40u);
}

TEST(Protocol, ParsesEmbeddedConfigThroughTheOneConfigParser) {
  Request request = parse_request(
      R"({"cmd": "submit", "program": "p",)"
      R"( "config": {"strategy": "bnb", "platform": {"l1_bytes": 512},)"
      R"( "search": {"deadline_seconds": 2.5}}})");
  EXPECT_TRUE(request.has_config);
  EXPECT_EQ(request.config.strategy, "bnb");
  EXPECT_EQ(request.config.platform.l1_bytes, 512);
  EXPECT_EQ(request.config.search.budget.deadline_seconds, 2.5);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), std::exception);
  EXPECT_THROW(parse_request(R"({"cmd": "frobnicate"})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "status", "bogus_key": 1})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "submit"})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "explore", "program": ""})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "cancel"})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "cancel", "job": -1})"), std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "explore", "program": "p", "seed_stride": 0})"),
               std::invalid_argument);
  EXPECT_THROW(parse_request(R"({"cmd": "explore", "program": "p", "l1_axis": [-4]})"),
               std::invalid_argument);
}

TEST(Protocol, RequestRoundTripsThroughItsWireLine) {
  Request request;
  request.command = Command::Explore;
  request.program_text = ir::serialize(mhla::testing::tiny_stream_program());
  request.config.strategy = "bnb";
  request.config.platform = mhla::testing::small_platform();
  request.config.search.budget.deadline_seconds = 1.5;
  request.has_config = true;
  request.explore.l1_axis = {128, 512};
  request.explore.l2_axis = {0, 4096};
  request.explore.strategies = {"greedy"};
  request.explore.explore_te = true;
  request.explore.seed_stride = 3;
  request.explore.budget = 17;

  const std::string line = to_json(request);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "wire lines must be single-line";

  Request parsed = parse_request(line);
  EXPECT_EQ(parsed.command, request.command);
  EXPECT_EQ(parsed.program_text, request.program_text);
  ASSERT_TRUE(parsed.has_config);
  EXPECT_EQ(parsed.config.strategy, "bnb");
  EXPECT_EQ(parsed.config.platform.l1_bytes, request.config.platform.l1_bytes);
  EXPECT_EQ(parsed.config.platform.l2_bytes, request.config.platform.l2_bytes);
  EXPECT_EQ(parsed.config.search.budget.deadline_seconds, 1.5);
  EXPECT_EQ(parsed.explore, request.explore);
}

TEST(Protocol, MetricsRequestRoundTripsItsStreamFlag) {
  Request plain = parse_request(R"({"cmd": "metrics"})");
  EXPECT_EQ(plain.command, Command::Metrics);
  EXPECT_FALSE(plain.stream_stats);

  Request streamed = parse_request(R"({"cmd": "metrics", "stream": true})");
  EXPECT_TRUE(streamed.stream_stats);

  Request round = parse_request(to_json(streamed));
  EXPECT_EQ(round.command, Command::Metrics);
  EXPECT_TRUE(round.stream_stats);
  EXPECT_EQ(to_json(plain).find("stream"), std::string::npos);
}

TEST(Protocol, MetricsEventCarriesEveryServerCounter) {
  ServerMetricsView view;
  view.jobs_accepted = 10;
  view.jobs_done = 7;
  view.jobs_failed = 1;
  view.jobs_cancelled = 2;
  view.queue_depth = 3;
  view.connections = 4;
  view.bytes_sent = 5000;
  view.lines_sent = 60;
  view.uptime_seconds = 1.5;
  view.cache.entries = 8;
  view.cache.hits = 9;

  for (const std::string& line : {event_metrics(view), event_stats(view)}) {
    SCOPED_TRACE(line);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    Json event = Json::parse(line);
    EXPECT_EQ(event.at("jobs_accepted").integer(), 10);
    EXPECT_EQ(event.at("jobs_done").integer(), 7);
    EXPECT_EQ(event.at("jobs_failed").integer(), 1);
    EXPECT_EQ(event.at("jobs_cancelled").integer(), 2);
    EXPECT_EQ(event.at("queue_depth").integer(), 3);
    EXPECT_EQ(event.at("connections").integer(), 4);
    EXPECT_EQ(event.at("bytes_sent").integer(), 5000);
    EXPECT_EQ(event.at("lines_sent").integer(), 60);
    EXPECT_EQ(event.at("uptime_seconds").number(), 1.5);
    EXPECT_EQ(event.at("cache").at("entries").integer(), 8);
    EXPECT_EQ(event.at("cache").at("hits").integer(), 9);
  }
  EXPECT_EQ(Json::parse(event_metrics(view)).at("event").string(), "metrics");
  EXPECT_EQ(Json::parse(event_stats(view)).at("event").string(), "stats");
}

// --- Event builders ----------------------------------------------------------

TEST(Protocol, EventsAreSingleLineParseableJson) {
  xplore::ExploreResult result;
  result.samples.resize(3);
  result.frontier.push_back({256, 0, 100.0, 50.0});
  result.frontier_cells.push_back({256, 0, "greedy", true});
  result.evaluations = 2;
  result.cache_hits = 1;
  result.rounds = 1;
  result.lattice_cells = 10;

  xplore::CacheStats stats;
  stats.entries = 5;
  stats.shards = 16;
  stats.hits = 7;

  const std::vector<std::string> events = {
      event_accepted(3, Command::Explore),
      event_frontier(3, result),
      event_done_explore(3, "done", result),
      event_done_submit(4, "cancelled", assign::SearchStatus::BudgetExhausted, 0.25, 123.0,
                        45.5, false, 1),
      event_done_failed(5, "parse error: line 3"),
      event_status({{1, Command::Submit, "running"}, {2, Command::Explore, "queued"}}),
      event_cache_stats(stats),
      event_cancelled(9, false),
      event_shutdown(),
      event_error("unknown command \"x\""),
  };
  for (const std::string& line : events) {
    SCOPED_TRACE(line);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    Json event = Json::parse(line);
    EXPECT_FALSE(event.at("event").string().empty());
  }
}

TEST(Protocol, DoneSubmitEventCarriesTheResultContract) {
  Json event = Json::parse(event_done_submit(11, "cancelled",
                                             assign::SearchStatus::BudgetExhausted, 0.125,
                                             1000.0, 250.5, false, 1));
  EXPECT_EQ(event.at("event").string(), "done");
  EXPECT_EQ(event.at("kind").string(), "submit");
  EXPECT_EQ(event.at("job").integer(), 11);
  EXPECT_EQ(event.at("state").string(), "cancelled");
  EXPECT_EQ(event.at("status").string(), "budget_exhausted");
  EXPECT_EQ(event.at("gap").number(), 0.125);
  EXPECT_EQ(event.at("cycles").number(), 1000.0);
  EXPECT_EQ(event.at("energy_nj").number(), 250.5);
  EXPECT_FALSE(event.at("from_cache").boolean());
  EXPECT_EQ(event.at("evaluations").integer(), 1);
}

TEST(Protocol, FrontierEventCarriesFullCellCoordinates) {
  xplore::ExploreResult result;
  result.samples.resize(2);
  result.frontier.push_back({512, 8192, 100.0, 50.0});
  result.frontier_cells.push_back({512, 8192, "bnb", false});
  result.evaluations = 2;

  Json event = Json::parse(event_frontier(1, result));
  EXPECT_EQ(event.at("event").string(), "frontier");
  ASSERT_EQ(event.at("frontier").array().size(), 1u);
  const Json& point = event.at("frontier").array()[0];
  EXPECT_EQ(point.at("l1_bytes").integer(), 512);
  EXPECT_EQ(point.at("l2_bytes").integer(), 8192);
  EXPECT_EQ(point.at("strategy").string(), "bnb");
  EXPECT_FALSE(point.at("with_te").boolean());
  EXPECT_EQ(point.at("cycles").number(), 100.0);
  EXPECT_EQ(point.at("energy_nj").number(), 50.0);
}

#ifndef _WIN32

// --- Framing over a real socket ----------------------------------------------

struct SocketPair {
  Socket a, b;
  SocketPair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(Framing, SplitsChunksIntoLinesAndStripsCarriageReturns) {
  SocketPair pair;
  // Two frames and a half, delivered across arbitrary write boundaries.
  ASSERT_TRUE(pair.a.write_all("{\"x\": 1}\r\n{\"y\"", 14));
  ASSERT_TRUE(pair.a.write_all(": 2}\n{\"partial", 14));
  pair.a.close();  // EOF with a trailing uncommitted frame

  LineReader reader(pair.b);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "{\"x\": 1}");
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "{\"y\": 2}");
  EXPECT_FALSE(reader.read_line(line)) << "a frame without its newline was never committed";
}

TEST(Framing, WriteLineAppendsTheTerminator) {
  SocketPair pair;
  ASSERT_TRUE(write_line(pair.a, "{\"event\": \"shutdown\"}"));
  pair.a.close();
  LineReader reader(pair.b);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "{\"event\": \"shutdown\"}");
  EXPECT_FALSE(reader.read_line(line));
}

TEST(Framing, OversizedLineKillsTheConnectionInsteadOfGrowing) {
  SocketPair pair;
  // Feed more than the frame cap without ever committing a newline; the
  // writer runs in a thread because the pair's buffers cannot hold it all.
  std::thread writer([&] {
    std::string chunk(1 << 20, 'a');
    std::size_t sent = 0;
    while (sent < kMaxLineBytes + chunk.size()) {
      if (!pair.a.write_all(chunk.data(), chunk.size())) break;
      sent += chunk.size();
    }
  });
  LineReader reader(pair.b);
  std::string line;
  EXPECT_THROW(reader.read_line(line), std::runtime_error);
  pair.b.shutdown_both();  // release the writer if it is still blocked
  writer.join();
}

#endif  // _WIN32

}  // namespace
}  // namespace mhla::serve
