// Counting global operator new/delete for the zero-steady-state allocation
// regression suite (tests/assign/alloc_regression_test.cpp).
//
// The replacement forms are deliberately minimal: malloc/free plus a relaxed
// atomic increment per successful allocation.  Linking them into the single
// test binary instruments every translation unit — the library under test,
// gtest, the standard library — which is exactly what the regression wants:
// any allocation inside a sampled region is visible, no matter which layer
// performed it.  The sanitizers still interpose on malloc/free underneath,
// so ASan/UBSan coverage of the suite is unaffected.
//
// Alignments above the malloc guarantee are served through posix_memalign;
// all aligned deletes funnel into free, which handles both.

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<long> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p) g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0) return nullptr;
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace

namespace mhla::testing {

long heap_allocations() { return g_heap_allocations.load(std::memory_order_relaxed); }

}  // namespace mhla::testing

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
