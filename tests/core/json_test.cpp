#include "core/json.h"

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mhla::core {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").boolean());
  EXPECT_FALSE(Json::parse("false").boolean());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5e2").number(), -50.0);
  EXPECT_EQ(Json::parse("42").integer(), 42);
  EXPECT_EQ(Json::parse("-7").integer(), -7);
  EXPECT_EQ(Json::parse("\"hi\"").string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  Json doc = Json::parse(R"({
    "name": "mhla",
    "sizes": [256, 1024, 65536],
    "nested": {"flag": true, "weight": 1.5}
  })");
  EXPECT_EQ(doc.at("name").string(), "mhla");
  ASSERT_EQ(doc.at("sizes").array().size(), 3u);
  EXPECT_EQ(doc.at("sizes").array()[2].integer(), 65536);
  EXPECT_TRUE(doc.at("nested").at("flag").boolean());
  EXPECT_DOUBLE_EQ(doc.at("nested").at("weight").number(), 1.5);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").string(), "A\xc3\xa9");
}

TEST(Json, RoundTripsSeventeenDigitDoubles) {
  // The config emitter relies on strtod(max_digits10 text) == original.
  for (double value : {0.1, 1.0 / 3.0, 2.5e-3, 123456.789012345, 4.0}) {
    std::ostringstream out;
    out << std::setprecision(17) << value;
    EXPECT_EQ(Json::parse(out.str()).number(), value) << out.str();
  }
}

TEST(Json, SyntaxErrorsCarryPosition) {
  try {
    Json::parse("{\"a\": 1,\n  bad}");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1, 2"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1 2"), std::invalid_argument);          // trailing garbage
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), std::invalid_argument);  // dup key
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("01x"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
}

TEST(Json, DeepNestingThrowsInsteadOfOverflowing) {
  std::string deep(100000, '[');
  deep += std::string(100000, ']');
  EXPECT_THROW(Json::parse(deep), std::invalid_argument);
  std::string objects;
  for (int i = 0; i < 5000; ++i) objects += "{\"k\":";
  objects += "1" + std::string(5000, '}');
  EXPECT_THROW(Json::parse(objects), std::invalid_argument);
  // A reasonable depth still parses.
  EXPECT_NO_THROW(Json::parse(std::string(50, '[') + "1" + std::string(50, ']')));
}

TEST(Json, AccessorsAreTypeChecked) {
  Json doc = Json::parse("{\"a\": [1]}");
  EXPECT_THROW(doc.at("a").string(), std::invalid_argument);
  EXPECT_THROW(doc.at("a").number(), std::invalid_argument);
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1.5").integer(), std::invalid_argument);
  EXPECT_THROW(Json::parse("3").string(), std::invalid_argument);
}

}  // namespace
}  // namespace mhla::core
