#include "core/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mhla::core {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {0u, 1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h.store(0);
    parallel_for(hits.size(), threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 16, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  parallel_for(hits.size(), 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DeterministicSlotWrites) {
  std::vector<int> serial(64), parallel(64);
  parallel_for(serial.size(), 1, [&](std::size_t i) { serial[i] = static_cast<int>(i * i); });
  parallel_for(parallel.size(), 4, [&](std::size_t i) { parallel[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(32, 4,
                   [&](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, DefaultParallelismIsPositive) { EXPECT_GE(default_parallelism(), 1u); }

}  // namespace
}  // namespace mhla::core
