#include "core/work_stealing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/run_budget.h"

namespace mhla::core {
namespace {

TEST(WorkStealing, RunsEverySeededTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    WorkStealingPool pool(threads);
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h.store(0);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      pool.spawn(static_cast<unsigned>(i) % pool.num_workers(),
                 [&hits, i](unsigned) { hits[i].fetch_add(1); });
    }
    EXPECT_EQ(pool.run(), 0u) << "threads " << threads;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(WorkStealing, NestedSpawnsAllRunBeforeRunReturns) {
  // A binary spawn tree four levels deep: run() must not return while any
  // spawned descendant is pending, whichever worker stole it.
  for (unsigned threads : {1u, 4u}) {
    WorkStealingPool pool(threads);
    std::atomic<int> executed{0};
    std::function<void(unsigned, int)> node = [&](unsigned worker, int depth) {
      executed.fetch_add(1);
      if (depth == 0) return;
      for (int child = 0; child < 2; ++child) {
        pool.spawn(worker, [&node, depth](unsigned w) { node(w, depth - 1); });
      }
    };
    pool.spawn(0, [&node](unsigned w) { node(w, 4); });
    EXPECT_EQ(pool.run(), 0u);
    EXPECT_EQ(executed.load(), 31) << "threads " << threads;  // 2^5 - 1
  }
}

TEST(WorkStealing, SingleWorkerRunsInlineDeterministically) {
  // With one worker the calling thread drains its own deque LIFO — a plain
  // depth-first loop, no threads, so spawn order fully determines run order.
  WorkStealingPool pool(1);
  std::vector<int> order;
  pool.spawn(0, [&](unsigned) {
    order.push_back(0);
    pool.spawn(0, [&](unsigned) { order.push_back(1); });
    pool.spawn(0, [&](unsigned) { order.push_back(2); });
  });
  EXPECT_EQ(pool.run(), 0u);
  // LIFO: the last spawn of the root task runs first.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(WorkStealing, FirstExceptionPropagatesAndPeersAreSkipped) {
  for (unsigned threads : {1u, 4u}) {
    WorkStealingPool pool(threads);
    std::atomic<int> ran{0};
    pool.spawn(0, [](unsigned) { throw std::runtime_error("boom"); });
    for (int i = 0; i < 64; ++i) {
      pool.spawn(0, [&ran](unsigned) { ran.fetch_add(1); });
    }
    EXPECT_THROW(pool.run(), std::runtime_error) << "threads " << threads;
    // Tasks claimed before the failure still ran; none ran after being
    // skipped, so executed + skipped covers the whole spawn set.  With one
    // worker the throwing task runs LAST (LIFO), so nothing is skipped;
    // the invariant, not an exact skip count, is what the pool promises.
    EXPECT_LE(ran.load(), 64);
  }
}

TEST(WorkStealing, ExpiredBudgetSkipsUnclaimedTasks) {
  BudgetSpec spec;
  spec.cancel = std::make_shared<std::atomic<bool>>(false);
  RunBudget budget(spec);
  budget.expire();  // expired before the pool even starts
  WorkStealingPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.spawn(0, [&ran](unsigned) { ran.fetch_add(1); });
  }
  EXPECT_EQ(pool.run(&budget), 32u);
  EXPECT_EQ(ran.load(), 0);
}

TEST(WorkStealing, StarvingReflectsQueueDepth) {
  WorkStealingPool pool(4);
  EXPECT_TRUE(pool.starving());  // empty pool: any task should split
  for (int i = 0; i < 8; ++i) {
    pool.spawn(0, [](unsigned) {});
  }
  EXPECT_FALSE(pool.starving());  // two tasks queued per worker
  EXPECT_EQ(pool.run(), 0u);
}

TEST(WorkStealing, StressManyUnevenTasksAcrossWorkers) {
  // Uneven split-on-demand load: every task spawns a shrinking chain, so
  // queues drain at different rates and stealing must rebalance.  The sum
  // over all executed chain lengths is the checkable invariant.
  WorkStealingPool pool(4);
  std::atomic<long> total{0};
  std::function<void(unsigned, int)> chain = [&](unsigned worker, int n) {
    total.fetch_add(n);
    if (n > 1) pool.spawn(worker, [&chain, n](unsigned w) { chain(w, n - 1); });
  };
  const int kChains = 64;
  long expected = 0;
  for (int n = 1; n <= kChains; ++n) {
    expected += static_cast<long>(n) * (n + 1) / 2;  // 1 + 2 + ... + n
    pool.spawn(static_cast<unsigned>(n) % pool.num_workers(),
               [&chain, n](unsigned w) { chain(w, n); });
  }
  EXPECT_EQ(pool.run(), 0u);
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace mhla::core
