// ArenaStack: the reserve-once, trivially-copyable journal backing the
// CostEngine/FootprintTracker undo logs and the DFS saved-site stack.

#include "core/arena.h"

#include <gtest/gtest.h>

#include <utility>

namespace mhla::core {
namespace {

struct Rec {
  int kind = 0;
  int a = 0;
  int b = 0;
};

TEST(Arena, PushPopBackAndIndexing) {
  ArenaStack<Rec> stack;
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.size(), 0u);

  stack.push_back({1, 10, 100});
  stack.push_back({2, 20, 200});
  stack.push_back({3, 30, 300});
  EXPECT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack.back().kind, 3);
  EXPECT_EQ(stack[0].a, 10);
  EXPECT_EQ(stack[1].b, 200);

  stack.back().b = 999;  // mutable access, like journal patch-ups
  EXPECT_EQ(stack[2].b, 999);

  stack.pop_back();
  EXPECT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack.back().kind, 2);
}

TEST(Arena, ReserveMakesPushesRegrowthFree) {
  ArenaStack<int> stack;
  stack.reserve(1000);
  EXPECT_GE(stack.capacity(), 1000u);
  for (int i = 0; i < 1000; ++i) stack.push_back(i);
  EXPECT_EQ(stack.regrowths(), 0) << "reserved capacity must absorb every push";
  EXPECT_EQ(stack.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(stack[static_cast<std::size_t>(i)], i);

  // reserve() never shrinks.
  std::size_t capacity = stack.capacity();
  stack.reserve(10);
  EXPECT_EQ(stack.capacity(), capacity);
}

TEST(Arena, UnreservedGrowthCountsRegrowths) {
  ArenaStack<int> stack;
  for (int i = 0; i < 100; ++i) stack.push_back(i);
  EXPECT_GT(stack.regrowths(), 0);
  EXPECT_EQ(stack.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stack[static_cast<std::size_t>(i)], i);
}

TEST(Arena, ClearKeepsCapacity) {
  ArenaStack<int> stack;
  stack.reserve(64);
  for (int i = 0; i < 64; ++i) stack.push_back(i);
  std::size_t capacity = stack.capacity();
  stack.clear();
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.capacity(), capacity) << "clear() must keep the arena block";
  for (int i = 0; i < 64; ++i) stack.push_back(-i);
  EXPECT_EQ(stack.regrowths(), 0);
  EXPECT_EQ(stack.back(), -63);
}

TEST(Arena, CopyIsDeepAndIndependent) {
  // bnb-par clones a whole EngineSearch (engine + tracker journals included)
  // per worker, so copies must be deep.
  ArenaStack<Rec> original;
  original.reserve(8);
  original.push_back({1, 2, 3});
  original.push_back({4, 5, 6});

  ArenaStack<Rec> copy(original);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[1].b, 6);
  copy.push_back({7, 8, 9});
  copy[0].a = -1;
  EXPECT_EQ(original.size(), 2u);
  EXPECT_EQ(original[0].a, 2);

  ArenaStack<Rec> assigned;
  assigned.push_back({9, 9, 9});
  assigned = original;
  ASSERT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned[0].kind, 1);
  EXPECT_EQ(assigned[1].kind, 4);

  ArenaStack<Rec> moved(std::move(copy));
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2].kind, 7);
}

TEST(Arena, SelfAssignmentIsSafe) {
  ArenaStack<int> stack;
  stack.push_back(42);
  stack.push_back(43);
  ArenaStack<int>& alias = stack;
  stack = alias;
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0], 42);
  EXPECT_EQ(stack[1], 43);
}

}  // namespace
}  // namespace mhla::core
