#include "core/json_report.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::core {
namespace {

/// Minimal structural JSON validation: balanced braces/brackets outside of
/// strings, no trailing garbage.
void expect_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonReport, SimResultIsWellFormed) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  sim::SimResult result = sim::simulate(ctx, assign::greedy_assign(ctx).assignment);
  std::string json = to_json(result);
  expect_balanced(json);
  EXPECT_NE(json.find("\"total_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"energy_nj\""), std::string::npos);
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_NE(json.find("\"SDRAM\""), std::string::npos);
  EXPECT_NE(json.find("\"feasible\": true"), std::string::npos);
}

TEST(JsonReport, FourPointIncludesAllBars) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  sim::FourPoint fp = sim::simulate_four_points(ctx, assign::greedy_assign(ctx).assignment);
  std::string json = to_json("demo app", fp);
  expect_balanced(json);
  for (const char* key : {"\"application\"", "\"out_of_box\"", "\"mhla\"", "\"mhla_te\"",
                          "\"ideal\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("demo app"), std::string::npos);
}

TEST(JsonReport, TradeoffPointsArray) {
  std::vector<xplore::TradeoffPoint> points(2);
  points[0].l1_bytes = 1024;
  points[0].cycles = 10.5;
  points[1].l1_bytes = 2048;
  points[1].energy_nj = 3.25;
  std::string json = to_json(points);
  expect_balanced(json);
  EXPECT_NE(json.find("\"l1_bytes\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"l1_bytes\": 2048"), std::string::npos);
  EXPECT_NE(json.find("10.5"), std::string::npos);
  EXPECT_NE(json.find("3.25"), std::string::npos);
}

TEST(JsonReport, EmptyTradeoffArray) {
  std::string json = to_json(std::vector<xplore::TradeoffPoint>{});
  expect_balanced(json);
}

}  // namespace
}  // namespace mhla::core
