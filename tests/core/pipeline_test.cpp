#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/json.h"
#include "core/json_report.h"
#include "helpers.h"

namespace mhla::core {
namespace {

/// Exact (bit-level) comparison of two simulation results.
void expect_same_result(const sim::SimResult& a, const sim::SimResult& b,
                        const std::string& where) {
  EXPECT_EQ(a.compute_cycles, b.compute_cycles) << where;
  EXPECT_EQ(a.access_cycles, b.access_cycles) << where;
  EXPECT_EQ(a.stall_cycles, b.stall_cycles) << where;
  EXPECT_EQ(a.energy_nj, b.energy_nj) << where;
  EXPECT_EQ(a.dma_busy_cycles, b.dma_busy_cycles) << where;
  EXPECT_EQ(a.num_block_transfers, b.num_block_transfers) << where;
  EXPECT_EQ(a.feasible, b.feasible) << where;
  ASSERT_EQ(a.layers.size(), b.layers.size()) << where;
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].reads, b.layers[i].reads) << where;
    EXPECT_EQ(a.layers[i].writes, b.layers[i].writes) << where;
    EXPECT_EQ(a.layers[i].energy_nj, b.layers[i].energy_nj) << where;
  }
  EXPECT_EQ(a.nest_cycles, b.nest_cycles) << where;
}

void expect_same_points(const sim::FourPoint& a, const sim::FourPoint& b,
                        const std::string& app) {
  expect_same_result(a.out_of_box, b.out_of_box, app + "/out_of_box");
  expect_same_result(a.mhla, b.mhla, app + "/mhla");
  expect_same_result(a.mhla_te, b.mhla_te, app + "/mhla_te");
  expect_same_result(a.ideal, b.ideal, app + "/ideal");
}

/// A config with every field moved off its default, for round-trip tests.
PipelineConfig custom_config() {
  PipelineConfig config;
  config.platform.l1_bytes = 2048;
  config.platform.l2_bytes = 0;
  config.platform.sram.base_energy_nj = 0.03;
  config.platform.sram.slope_energy_nj = 0.004;
  config.platform.sram.write_factor = 1.25;
  config.platform.sram.base_latency = 2;
  config.platform.sram.latency_step_bytes = 16 * 1024;
  config.platform.sram.bytes_per_cycle = 4.0;
  config.platform.sdram.read_energy_nj = 5.5;
  config.platform.sdram.write_energy_nj = 6.1;
  config.platform.sdram.read_latency = 25;
  config.platform.sdram.write_latency = 28;
  config.platform.sdram.bytes_per_cycle = 1.5;
  config.dma.present = false;
  config.dma.setup_cycles = 42;
  config.dma.bytes_per_cycle = 3.5;
  config.dma.channels = 2;
  config.strategy = "bnb";
  config.target = assign::Target::Energy;
  config.search.energy_weight = 0.75;
  config.search.time_weight = 0.25;
  config.search.max_moves = 500;
  config.search.max_states = 12345;
  config.search.allow_array_migration = false;
  config.search.use_cost_engine = false;
  config.search.use_branch_and_bound = false;
  config.search.use_footprint_tracker = false;
  config.search.use_footprint_bound = false;
  config.search.bnb_threads = 6;
  config.search.bnb_tasks_per_thread = 2;
  config.search.bnb_seed_incumbent = false;
  config.search.bnb_work_stealing = false;
  config.te.order = te::ExtensionOrder::BySizeDescending;
  config.te.max_lookahead = 5;
  config.te.charge_cold_start = true;
  config.te.use_footprint_tracker = false;
  config.num_threads = 3;
  return config;
}

TEST(Pipeline, GreedyStrategyMatchesRunMhlaBitIdenticallyOnAllNineApps) {
  // Acceptance criterion of the API redesign: the facade must not move a
  // single bit relative to the legacy run_mhla driver.
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = make_workspace(info.build(), {}, {});
    RunResult legacy = run_mhla(*ws);

    Pipeline pipeline(PipelineConfig{});
    PipelineResult result = pipeline.run(*ws);

    expect_same_points(result.points, legacy.points, info.name);
    EXPECT_EQ(result.search.assignment, legacy.step1.assignment) << info.name;
    EXPECT_EQ(result.search.scalar, legacy.step1.final_scalar) << info.name;
    EXPECT_EQ(result.search.evaluations, legacy.step1.evaluations) << info.name;
  }
}

TEST(Pipeline, MatchesRunMhlaForEveryTarget) {
  auto ws = make_workspace(apps::build_cavity_detection(), {}, {});
  for (assign::Target target :
       {assign::Target::Energy, assign::Target::Time, assign::Target::Balanced}) {
    RunResult legacy = run_mhla(*ws, target);
    PipelineConfig config;
    config.target = target;
    PipelineResult result = Pipeline(config).run(*ws);
    expect_same_points(result.points, legacy.points, assign::to_string(target));
  }
}

TEST(Pipeline, RunFromProgramMatchesRunFromWorkspace) {
  PipelineConfig config;
  config.platform = testing::small_platform();
  Pipeline pipeline(config);
  auto ws = make_workspace(testing::blocked_reuse_program(), config.platform, config.dma);
  PipelineResult from_ws = pipeline.run(*ws);
  PipelineResult from_program = pipeline.run(testing::blocked_reuse_program());
  expect_same_points(from_program.points, from_ws.points, "blocked");
}

TEST(Pipeline, UnknownStrategyThrowsAtConstruction) {
  PipelineConfig config;
  config.strategy = "simulated-annealing";
  EXPECT_THROW(Pipeline pipeline(config), std::out_of_range);
}

TEST(Pipeline, ReportsStagesAndTimings) {
  PipelineConfig config;
  config.platform = testing::small_platform();
  Pipeline pipeline(config);
  std::vector<std::string> seen;
  pipeline.set_progress([&](const std::string& stage, double) { seen.push_back(stage); });
  PipelineResult result = pipeline.run(testing::blocked_reuse_program());

  std::vector<std::string> expected = {"analyze", "assign", "time_extend", "simulate"};
  EXPECT_EQ(seen, expected);
  ASSERT_EQ(result.timings.size(), expected.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.timings[i].stage, expected[i]);
    EXPECT_GE(result.timings[i].seconds, 0.0);
    sum += result.timings[i].seconds;
  }
  EXPECT_DOUBLE_EQ(result.total_seconds, sum);
}

TEST(Pipeline, RunBatchIsDeterministicForAnyThreadCount) {
  std::vector<ir::Program> programs;
  programs.push_back(testing::tiny_stream_program());
  programs.push_back(testing::blocked_reuse_program());
  programs.push_back(testing::producer_consumer_program());

  PipelineConfig config;
  config.platform = testing::small_platform();
  config.num_threads = 1;
  std::vector<PipelineResult> serial = Pipeline(config).run_batch([&] {
    std::vector<ir::Program> copy;
    copy.push_back(testing::tiny_stream_program());
    copy.push_back(testing::blocked_reuse_program());
    copy.push_back(testing::producer_consumer_program());
    return copy;
  }());
  ASSERT_EQ(serial.size(), 3u);

  for (unsigned threads : {0u, 2u, 4u}) {
    config.num_threads = threads;
    Pipeline pipeline(config);
    int completed = 0;
    pipeline.set_progress([&](const std::string&, double) { ++completed; });
    std::vector<PipelineResult> parallel = pipeline.run_batch([&] {
      std::vector<ir::Program> copy;
      copy.push_back(testing::tiny_stream_program());
      copy.push_back(testing::blocked_reuse_program());
      copy.push_back(testing::producer_consumer_program());
      return copy;
    }());
    ASSERT_EQ(parallel.size(), serial.size()) << "threads " << threads;
    EXPECT_EQ(completed, 3) << "threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_same_points(parallel[i].points, serial[i].points,
                         "batch[" + std::to_string(i) + "] threads " + std::to_string(threads));
      EXPECT_EQ(parallel[i].search.assignment, serial[i].search.assignment);
    }
  }
}

TEST(PipelineConfigJson, DefaultConfigRoundTrips) {
  PipelineConfig config;
  EXPECT_EQ(pipeline_config_from_json(to_json(config)), config);
}

TEST(PipelineConfigJson, CustomConfigRoundTripsLosslessly) {
  PipelineConfig config = custom_config();
  PipelineConfig parsed = pipeline_config_from_json(to_json(config));
  EXPECT_EQ(parsed, config);
  // And the emitted text is stable across one round trip.
  EXPECT_EQ(to_json(parsed), to_json(config));
}

TEST(PipelineConfigJson, PartialDocumentsKeepDefaults) {
  PipelineConfig parsed = pipeline_config_from_json(
      R"({"strategy": "bnb", "platform": {"l1_bytes": 512}})");
  EXPECT_EQ(parsed.strategy, "bnb");
  EXPECT_EQ(parsed.platform.l1_bytes, 512);
  PipelineConfig defaults;
  EXPECT_EQ(parsed.platform.l2_bytes, defaults.platform.l2_bytes);
  EXPECT_EQ(parsed.te, defaults.te);
  EXPECT_EQ(parsed.search, defaults.search);
}

TEST(PipelineConfigJson, BnbParKnobsRoundTrip) {
  // The parallel branch-and-bound knobs ride in the search block: partial
  // documents set them, dumps carry them, and the round trip is lossless
  // (CustomConfigRoundTripsLosslessly covers non-default values).
  PipelineConfig parsed = pipeline_config_from_json(
      R"({"strategy": "bnb-par",
          "search": {"bnb_threads": 4, "bnb_tasks_per_thread": 8,
                     "bnb_seed_incumbent": false}})");
  EXPECT_EQ(parsed.strategy, "bnb-par");
  EXPECT_EQ(parsed.search.bnb_threads, 4u);
  EXPECT_EQ(parsed.search.bnb_tasks_per_thread, 8);
  EXPECT_FALSE(parsed.search.bnb_seed_incumbent);

  std::string dumped = to_json(PipelineConfig{});
  EXPECT_NE(dumped.find("bnb_threads"), std::string::npos);
  EXPECT_NE(dumped.find("bnb_tasks_per_thread"), std::string::npos);
  EXPECT_NE(dumped.find("bnb_seed_incumbent"), std::string::npos);
}

TEST(PipelineConfigJson, MalformedInputGivesClearErrors) {
  // Syntax error: position included.
  try {
    pipeline_config_from_json("{\"strategy\": }");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("JSON parse error"), std::string::npos) << e.what();
  }
  // Unknown key: named.
  try {
    pipeline_config_from_json(R"({"stratgy": "greedy"})");
    FAIL() << "expected an unknown-key error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stratgy"), std::string::npos) << e.what();
  }
  // Nested unknown key: path included.
  EXPECT_THROW(pipeline_config_from_json(R"({"platform": {"l3_bytes": 1}})"),
               std::invalid_argument);
  // Type mismatch.
  EXPECT_THROW(pipeline_config_from_json(R"({"num_threads": "many"})"),
               std::invalid_argument);
  // Bad enum text.
  EXPECT_THROW(pipeline_config_from_json(R"({"target": "speed"})"), std::invalid_argument);
  EXPECT_THROW(pipeline_config_from_json(R"({"te": {"order": "random"}})"),
               std::invalid_argument);
}

TEST(PipelineConfigJson, OutOfRangeIntegersThrowInsteadOfWrapping) {
  // A wrapped max_moves of 0 would silently disable the search.
  EXPECT_THROW(pipeline_config_from_json(R"({"search": {"max_moves": 4294967296}})"),
               std::invalid_argument);
  EXPECT_THROW(pipeline_config_from_json(R"({"num_threads": -1})"), std::invalid_argument);
  EXPECT_THROW(pipeline_config_from_json(R"({"dma": {"setup_cycles": 3000000000}})"),
               std::invalid_argument);
}

TEST(Pipeline, CustomTargetHonorsExplicitWeights) {
  // target "custom" must make the serialized weights live: an all-energy
  // custom weighting matches the Energy target bit for bit.
  auto ws = make_workspace(apps::build_cavity_detection(), {}, {});
  PipelineConfig energy;
  energy.target = assign::Target::Energy;
  PipelineConfig custom = pipeline_config_from_json(
      R"({"target": "custom", "search": {"energy_weight": 1.0, "time_weight": 0.0}})");
  expect_same_points(Pipeline(custom).run(*ws).points, Pipeline(energy).run(*ws).points,
                     "custom-vs-energy");
  // And a custom weighting that differs from balanced must be able to
  // change the outcome's objective trade-off direction.
  EXPECT_EQ(assign::parse_target("custom"), assign::Target::Custom);
  EXPECT_EQ(assign::to_string(assign::Target::Custom), "custom");
  EXPECT_THROW(assign::target_weights(assign::Target::Custom), std::invalid_argument);
}

TEST(PipelineConfigJson, ParsedConfigDrivesThePipeline) {
  PipelineConfig config;
  config.platform = testing::small_platform();
  PipelineConfig parsed = pipeline_config_from_json(to_json(config));
  PipelineResult from_parsed = Pipeline(parsed).run(testing::blocked_reuse_program());
  PipelineResult from_value = Pipeline(config).run(testing::blocked_reuse_program());
  expect_same_points(from_parsed.points, from_value.points, "parsed-config");
}

TEST(PipelineResultJson, EmitsStrategyMetadataAndTimings) {
  PipelineConfig config;
  config.platform = testing::small_platform();
  PipelineResult result = Pipeline(config).run(testing::blocked_reuse_program());
  std::string text = to_json("blocked", result);

  Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("application").string(), "blocked");
  EXPECT_EQ(doc.at("strategy").string(), "greedy");
  EXPECT_GT(doc.at("search").at("evaluations").integer(), 0);
  ASSERT_EQ(doc.at("timings").array().size(), 4u);
  EXPECT_EQ(doc.at("timings").array()[1].at("stage").string(), "assign");
  EXPECT_EQ(doc.at("points").at("application").string(), "blocked");
  EXPECT_GT(doc.at("points").at("mhla").at("total_cycles").number(), 0.0);
}

}  // namespace
}  // namespace mhla::core
