#include "mem/dma.h"

#include <gtest/gtest.h>

#include "mem/energy_model.h"

namespace mhla::mem {
namespace {

TEST(DmaEngine, TransferCyclesIncludeSetup) {
  DmaEngine dma;
  MemLayer src = make_sdram_layer("SDRAM");
  MemLayer dst = make_sram_layer("L1", 4096);
  double cycles = dma.transfer_cycles(0, src, dst);
  EXPECT_DOUBLE_EQ(cycles, static_cast<double>(dma.setup_cycles));
}

TEST(DmaEngine, BandwidthIsMinOfEngineAndLayers) {
  DmaEngine dma;
  dma.setup_cycles = 0;
  dma.bytes_per_cycle = 8.0;
  MemLayer src = make_sdram_layer("SDRAM");  // 2 B/cycle by default
  MemLayer dst = make_sram_layer("L1", 4096);  // 8 B/cycle
  // Effective bandwidth limited by SDRAM: 2 B/cycle -> 512 cycles for 1 KiB.
  EXPECT_DOUBLE_EQ(dma.transfer_cycles(1024, src, dst), 512.0);
}

TEST(DmaEngine, EngineCanBeTheBottleneck) {
  DmaEngine dma;
  dma.setup_cycles = 0;
  dma.bytes_per_cycle = 1.0;
  MemLayer src = make_sram_layer("L2", 65536);
  MemLayer dst = make_sram_layer("L1", 4096);
  EXPECT_DOUBLE_EQ(dma.transfer_cycles(100, src, dst), 100.0);
}

TEST(DmaEngine, CyclesScaleLinearlyWithBytes) {
  DmaEngine dma;
  MemLayer src = make_sdram_layer("SDRAM");
  MemLayer dst = make_sram_layer("L1", 4096);
  double c1 = dma.transfer_cycles(1024, src, dst) - dma.setup_cycles;
  double c2 = dma.transfer_cycles(2048, src, dst) - dma.setup_cycles;
  EXPECT_DOUBLE_EQ(c2, 2.0 * c1);
}

TEST(BlockingTransfer, MatchesEngineOccupancy) {
  DmaEngine dma;
  MemLayer src = make_sdram_layer("SDRAM");
  MemLayer dst = make_sram_layer("L1", 4096);
  EXPECT_DOUBLE_EQ(blocking_transfer_cycles(4096, src, dst, dma),
                   dma.transfer_cycles(4096, src, dst));
}

TEST(DmaEngine, DefaultIsPresent) {
  DmaEngine dma;
  EXPECT_TRUE(dma.present);
  EXPECT_GE(dma.channels, 1);
}

}  // namespace
}  // namespace mhla::mem
