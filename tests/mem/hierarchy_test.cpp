#include "mem/hierarchy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mhla::mem {
namespace {

TEST(Hierarchy, DefaultPlatformShape) {
  Hierarchy h = make_hierarchy({});
  ASSERT_EQ(h.num_layers(), 3);
  EXPECT_EQ(h.layer(0).name, "L1");
  EXPECT_EQ(h.layer(1).name, "L2");
  EXPECT_EQ(h.layer(2).name, "SDRAM");
  EXPECT_EQ(h.background(), 2);
  EXPECT_TRUE(h.is_on_chip(0));
  EXPECT_TRUE(h.is_on_chip(1));
  EXPECT_FALSE(h.is_on_chip(2));
}

TEST(Hierarchy, OnChipCapacity) {
  PlatformConfig config;
  config.l1_bytes = 1024;
  config.l2_bytes = 8192;
  Hierarchy h = make_hierarchy(config);
  EXPECT_EQ(h.on_chip_capacity(), 1024 + 8192);
}

TEST(Hierarchy, SingleLayerPlatform) {
  PlatformConfig config;
  config.l1_bytes = 0;
  config.l2_bytes = 0;
  Hierarchy h = make_hierarchy(config);
  EXPECT_EQ(h.num_layers(), 1);
  EXPECT_EQ(h.background(), 0);
  EXPECT_EQ(h.on_chip_capacity(), 0);
}

TEST(Hierarchy, L1OnlyPlatform) {
  PlatformConfig config;
  config.l1_bytes = 2048;
  config.l2_bytes = 0;
  Hierarchy h = make_hierarchy(config);
  EXPECT_EQ(h.num_layers(), 2);
  EXPECT_EQ(h.layer(0).capacity_bytes, 2048);
}

TEST(Hierarchy, RejectsEmptyLayers) {
  EXPECT_THROW((void)Hierarchy{std::vector<MemLayer>{}}, std::invalid_argument);
}

TEST(Hierarchy, RejectsBoundedBackground) {
  std::vector<MemLayer> layers = {make_sram_layer("L1", 1024)};
  EXPECT_THROW((void)Hierarchy{layers}, std::invalid_argument);
}

TEST(Hierarchy, RejectsUnboundedInnerLayer) {
  std::vector<MemLayer> layers = {make_sdram_layer("weird"), make_sdram_layer("SDRAM")};
  EXPECT_THROW((void)Hierarchy{layers}, std::invalid_argument);
}

TEST(Hierarchy, RejectsOnChipBackground) {
  MemLayer fake = make_sram_layer("pseudo", 0);
  fake.capacity_bytes = 0;  // unbounded but still marked on-chip
  EXPECT_THROW((void)Hierarchy{{fake}}, std::invalid_argument);
}

TEST(Hierarchy, LargerL1CostsMoreEnergyPerAccess) {
  PlatformConfig small;
  small.l1_bytes = 1024;
  PlatformConfig big;
  big.l1_bytes = 64 * 1024;
  EXPECT_LT(make_hierarchy(small).layer(0).read_energy_nj,
            make_hierarchy(big).layer(0).read_energy_nj);
}

}  // namespace
}  // namespace mhla::mem
