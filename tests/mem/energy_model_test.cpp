#include "mem/energy_model.h"

#include <gtest/gtest.h>

namespace mhla::mem {
namespace {

TEST(SramModel, EnergyIsMonotoneInCapacity) {
  double prev = 0.0;
  for (i64 size = 256; size <= 1024 * 1024; size *= 2) {
    double e = sram_read_energy_nj(size);
    EXPECT_GT(e, prev) << "capacity " << size;
    prev = e;
  }
}

TEST(SramModel, EnergySublinearInCapacity) {
  // sqrt scaling: doubling capacity must raise energy by < 2x.
  for (i64 size = 1024; size <= 256 * 1024; size *= 2) {
    EXPECT_LT(sram_read_energy_nj(2 * size), 2.0 * sram_read_energy_nj(size));
  }
}

TEST(SramModel, LatencyStepsWithCapacity) {
  SramModelParams params;
  EXPECT_EQ(sram_read_latency(1024, params), params.base_latency);
  EXPECT_EQ(sram_read_latency(params.latency_step_bytes, params), params.base_latency + 1);
  EXPECT_EQ(sram_read_latency(4 * params.latency_step_bytes, params), params.base_latency + 4);
}

TEST(SramModel, HandlesDegenerateCapacity) {
  EXPECT_GT(sram_read_energy_nj(0), 0.0);
  EXPECT_GT(sram_read_energy_nj(1), 0.0);
}

TEST(SramLayer, FullyPopulated) {
  MemLayer layer = make_sram_layer("L1", 4096);
  EXPECT_EQ(layer.name, "L1");
  EXPECT_EQ(layer.tech, MemTech::Sram);
  EXPECT_EQ(layer.capacity_bytes, 4096);
  EXPECT_TRUE(layer.on_chip);
  EXPECT_FALSE(layer.unbounded());
  EXPECT_GT(layer.read_energy_nj, 0.0);
  EXPECT_GT(layer.write_energy_nj, layer.read_energy_nj);  // write factor > 1
  EXPECT_GE(layer.read_latency, 1);
}

TEST(SdramLayer, OffChipAndUnbounded) {
  MemLayer layer = make_sdram_layer("SDRAM");
  EXPECT_EQ(layer.tech, MemTech::Sdram);
  EXPECT_FALSE(layer.on_chip);
  EXPECT_TRUE(layer.unbounded());
}

TEST(EnergyGap, OffChipDominatesOnChip) {
  // The on-chip/off-chip energy and latency gaps drive the whole technique;
  // guard them.
  MemLayer l1 = make_sram_layer("L1", 4 * 1024);
  MemLayer sdram = make_sdram_layer("SDRAM");
  EXPECT_GT(sdram.read_energy_nj, 10.0 * l1.read_energy_nj);
  EXPECT_GT(sdram.read_latency, 10 * l1.read_latency);
}

TEST(MemLayer, AccessHelpers) {
  MemLayer layer = make_sram_layer("L1", 1024);
  EXPECT_DOUBLE_EQ(layer.access_energy_nj(false), layer.read_energy_nj);
  EXPECT_DOUBLE_EQ(layer.access_energy_nj(true), layer.write_energy_nj);
  EXPECT_EQ(layer.access_latency(false), layer.read_latency);
  EXPECT_EQ(layer.access_latency(true), layer.write_latency);
}

class SramSizeSweep : public ::testing::TestWithParam<i64> {};

TEST_P(SramSizeSweep, EnergyBetweenBaseAndSdram) {
  i64 size = GetParam();
  double e = sram_read_energy_nj(size);
  SramModelParams params;
  SdramModelParams sdram;
  EXPECT_GE(e, params.base_energy_nj);
  EXPECT_LT(e, sdram.read_energy_nj) << "on-chip SRAM of " << size
                                     << " B must stay cheaper than off-chip";
}

INSTANTIATE_TEST_SUITE_P(Capacities, SramSizeSweep,
                         ::testing::Values(256, 1024, 4096, 16384, 65536, 262144));

}  // namespace
}  // namespace mhla::mem
