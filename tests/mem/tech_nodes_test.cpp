#include <gtest/gtest.h>

#include "mem/energy_model.h"
#include "mem/hierarchy.h"

namespace mhla::mem {
namespace {

TEST(TechNodes, OnChipEnergyShrinksWithNode) {
  for (i64 size : {1024, 8 * 1024, 64 * 1024}) {
    double e180 = sram_read_energy_nj(size, sram_params_for(TechNode::Nm180));
    double e130 = sram_read_energy_nj(size, sram_params_for(TechNode::Nm130));
    double e90 = sram_read_energy_nj(size, sram_params_for(TechNode::Nm90));
    EXPECT_GT(e180, e130);
    EXPECT_GT(e130, e90);
  }
}

TEST(TechNodes, OffChipEnergyShrinksWithNode) {
  EXPECT_GT(sdram_params_for(TechNode::Nm180).read_energy_nj,
            sdram_params_for(TechNode::Nm130).read_energy_nj);
  EXPECT_GT(sdram_params_for(TechNode::Nm130).read_energy_nj,
            sdram_params_for(TechNode::Nm90).read_energy_nj);
}

TEST(TechNodes, OnOffGapWidensAtSmallerNodes) {
  // The architectural motivation for scratchpad hierarchies only grows:
  // the off-chip/on-chip energy ratio increases from 180 nm to 90 nm.
  auto gap = [](TechNode node) {
    double on = sram_read_energy_nj(4 * 1024, sram_params_for(node));
    return sdram_params_for(node).read_energy_nj / on;
  };
  EXPECT_LT(gap(TechNode::Nm180), gap(TechNode::Nm130));
  EXPECT_LT(gap(TechNode::Nm130), gap(TechNode::Nm90));
}

TEST(TechNodes, Node130IsTheDefaultCalibration) {
  SramModelParams defaults;
  SramModelParams nm130 = sram_params_for(TechNode::Nm130);
  EXPECT_DOUBLE_EQ(defaults.base_energy_nj, nm130.base_energy_nj);
  EXPECT_DOUBLE_EQ(defaults.slope_energy_nj, nm130.slope_energy_nj);
  SdramModelParams sdefaults;
  EXPECT_DOUBLE_EQ(sdefaults.read_energy_nj,
                   sdram_params_for(TechNode::Nm130).read_energy_nj);
}

TEST(TechNodes, HierarchiesBuildAtEveryNode) {
  for (TechNode node : {TechNode::Nm180, TechNode::Nm130, TechNode::Nm90}) {
    PlatformConfig config;
    config.sram = sram_params_for(node);
    config.sdram = sdram_params_for(node);
    Hierarchy h = make_hierarchy(config);
    EXPECT_EQ(h.num_layers(), 3);
    EXPECT_GT(h.layer(2).read_energy_nj, h.layer(0).read_energy_nj);
  }
}

}  // namespace
}  // namespace mhla::mem
