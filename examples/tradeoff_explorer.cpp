// Domain example 2: the trade-off exploration the paper's abstract promises
// ("a thorough trade-off exploration for different memory layer sizes").
// Sweeps the on-chip configuration for a chosen application and prints the
// energy/performance Pareto frontier a system designer would pick from.
//
// Usage:   ./build/examples/tradeoff_explorer [app_name]
//          (default app: cavity_detection; try `jpeg_compress`, `qsdpcm`...)

#include <iostream>

#include "apps/registry.h"
#include "core/report_table.h"
#include "explore/sweep.h"

using namespace mhla;

int main(int argc, char** argv) {
  std::string app_name = argc > 1 ? argv[1] : "cavity_detection";
  ir::Program program = [&] {
    try {
      return apps::build_app(app_name);
    } catch (const std::out_of_range&) {
      std::cerr << "unknown app '" << app_name << "'; available:\n";
      for (const apps::AppInfo& info : apps::all_apps()) std::cerr << "  " << info.name << "\n";
      std::exit(1);
    }
  }();

  xplore::SweepConfig config;
  for (ir::i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 64 * 1024, 256 * 1024};

  std::vector<xplore::SweepSample> samples = xplore::sweep_layer_sizes(program, config);
  std::vector<xplore::TradeoffPoint> front = xplore::frontier(samples);

  std::cout << "explored " << samples.size() << " on-chip configurations for '" << app_name
            << "'\n\nPareto frontier (choose your trade-off):\n";
  core::Table table({"L1", "L2", "cycles", "energy nJ"});
  for (const xplore::TradeoffPoint& p : front) {
    table.add_row({std::to_string(p.l1_bytes), std::to_string(p.l2_bytes),
                   core::Table::num(p.cycles, 0), core::Table::num(p.energy_nj, 0)});
  }
  std::cout << table.str();

  // Show the span the exploration covers.
  auto [min_it, max_it] = std::minmax_element(
      samples.begin(), samples.end(), [](const xplore::SweepSample& a, const xplore::SweepSample& b) {
        return a.point.energy_nj < b.point.energy_nj;
      });
  std::cout << "\nenergy span across configurations: "
            << core::Table::num(100.0 * (max_it->point.energy_nj - min_it->point.energy_nj) /
                                    max_it->point.energy_nj)
            << " % (best config saves this much vs the worst swept config)\n";
  return 0;
}
