// Domain example 2: the trade-off exploration the paper's abstract promises
// ("a thorough trade-off exploration for different memory layer sizes") —
// now driven by the adaptive xplore::Explorer instead of a fixed grid.  The
// engine seeds a coarse sub-grid of the layer-size lattice and bisects
// around the Pareto frontier, so it finds the trade-off curve with a
// fraction of the full grid's pipeline runs.
//
// Usage:   ./build/examples/tradeoff_explorer [app_name] [cache.json]
//          (default app: cavity_detection; try `jpeg_compress`, `qsdpcm`...
//           pass a cache path to make a second run skip every evaluation)

#include <algorithm>
#include <iostream>

#include "apps/registry.h"
#include "core/report_table.h"
#include "explore/explorer.h"

using namespace mhla;

int main(int argc, char** argv) {
  std::string app_name = argc > 1 ? argv[1] : "cavity_detection";
  ir::Program program = [&] {
    try {
      return apps::build_app(app_name);
    } catch (const std::out_of_range&) {
      std::cerr << "unknown app '" << app_name << "'; available:\n";
      for (const apps::AppInfo& info : apps::all_apps()) std::cerr << "  " << info.name << "\n";
      std::exit(1);
    }
  }();

  xplore::ExplorerConfig config = xplore::default_explorer();
  if (argc > 2) config.cache_path = argv[2];

  xplore::Explorer explorer(config);
  xplore::ExploreResult result = explorer.run(program);

  std::cout << "explored '" << app_name << "': " << result.evaluations << " pipeline runs for a "
            << result.lattice_cells << "-cell lattice (" << result.cache_hits
            << " served from cache, " << result.rounds << " adaptive rounds"
            << (result.converged ? ", converged" : "") << ")\n\n"
            << "Pareto frontier (choose your trade-off):\n";
  core::Table table({"L1", "L2", "cycles", "energy nJ"});
  for (const xplore::TradeoffPoint& p : result.frontier) {
    table.add_row({std::to_string(p.l1_bytes), std::to_string(p.l2_bytes),
                   core::Table::num(p.cycles, 0), core::Table::num(p.energy_nj, 0)});
  }
  std::cout << table.str();

  // Show the span the exploration covers.
  auto [min_it, max_it] = std::minmax_element(
      result.samples.begin(), result.samples.end(),
      [](const xplore::ExploreSample& a, const xplore::ExploreSample& b) {
        return a.point.energy_nj < b.point.energy_nj;
      });
  std::cout << "\nenergy span across sampled configurations: "
            << core::Table::num(100.0 * (max_it->point.energy_nj - min_it->point.energy_nj) /
                                    max_it->point.energy_nj)
            << " % (best sampled config saves this much vs the worst)\n";
  return 0;
}
