// Domain example 1: full-search motion estimation (the paper's flagship
// workload).  Shows what MHLA actually decides: which copy candidates are
// selected, where arrays and copies live, and how the two steps change the
// time/energy profile across three platform sizes.
//
// Build & run:   cmake --build build && ./build/examples/motion_estimation

#include <iostream>

#include "apps/registry.h"
#include "core/pipeline.h"
#include "core/report_table.h"

using namespace mhla;

namespace {

void describe_assignment(const core::Workspace& ws, const assign::Assignment& assignment) {
  const mem::Hierarchy& hierarchy = ws.hierarchy();
  std::cout << "array homes:\n";
  for (const ir::ArrayDecl& array : ws.program().arrays()) {
    int layer = assignment.layer_of(array.name, hierarchy.background());
    std::cout << "  " << array.name << " (" << array.bytes() << " B) -> "
              << hierarchy.layer(layer).name << "\n";
  }
  std::cout << "selected copies:\n";
  if (assignment.copies.empty()) std::cout << "  (none)\n";
  for (const assign::PlacedCopy& pc : assignment.copies) {
    const analysis::CopyCandidate& cc = ws.reuse().candidate(pc.cc_id);
    std::cout << "  " << cc.array << " nest " << cc.nest << " level " << cc.level << ": "
              << cc.bytes << " B buffer, " << cc.transfers << " transfers of "
              << cc.bytes_per_transfer() << " B, reuse factor "
              << core::Table::num(cc.reuse_factor(), 1) << " -> "
              << ws.hierarchy().layer(pc.layer).name << "\n";
  }
}

}  // namespace

int main() {
  struct PlatformCase {
    const char* label;
    ir::i64 l1;
    ir::i64 l2;
  };
  const PlatformCase cases[] = {
      {"tiny   (1 KiB L1)", 1 * 1024, 0},
      {"small  (4 KiB L1 + 128 KiB L2)", 4 * 1024, 128 * 1024},
      {"large  (16 KiB L1 + 256 KiB L2)", 16 * 1024, 256 * 1024},
  };

  for (const PlatformCase& c : cases) {
    core::PipelineConfig config;
    config.platform.l1_bytes = c.l1;
    config.platform.l2_bytes = c.l2;
    auto ws = core::make_workspace(apps::build_motion_estimation(), config.platform, config.dma);
    core::PipelineResult run = core::Pipeline(config).run(*ws);

    std::cout << "================ platform: " << c.label << " ================\n";
    describe_assignment(*ws, run.search.assignment);
    std::cout << "\n" << sim::format_four_points("motion_estimation", run.points) << "\n";
  }
  return 0;
}
