// The command-line face of the library: run the full MHLA flow on one of
// the built-in applications or on a program description file (the `.mhla`
// text format, see ir/serialize.h), on a configurable platform.
//
// Usage:
//   mhla_tool --app motion_estimation [options]
//   mhla_tool --file program.mhla [options]
//   mhla_tool --dump-app qsdpcm            # print the .mhla description
//
// Options:
//   --l1 <bytes>      L1 scratchpad capacity   (default 4096)
//   --l2 <bytes>      L2 scratchpad capacity   (default 131072, 0 = none)
//   --target <t>      energy | time | balanced (default balanced)
//   --no-dma          platform without a transfer engine (TE not applicable)
//   --sweep           run the layer-size trade-off exploration instead
//   --verbose         also print the program and the chosen assignment

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "core/driver.h"
#include "core/json_report.h"
#include "core/report_table.h"
#include "explore/sweep.h"
#include "ir/printer.h"
#include "ir/serialize.h"

using namespace mhla;

namespace {

struct Options {
  std::string app;
  std::string file;
  std::string dump_app;
  ir::i64 l1 = 4 * 1024;
  ir::i64 l2 = 128 * 1024;
  assign::Target target = assign::Target::Balanced;
  bool no_dma = false;
  bool sweep = false;
  bool verbose = false;
  bool json = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--app <name> | --file <path.mhla> | --dump-app <name>)\n"
               "       [--l1 <bytes>] [--l2 <bytes>] [--target energy|time|balanced]\n"
               "       [--no-dma] [--sweep] [--verbose] [--json]\n\napplications:\n";
  for (const apps::AppInfo& info : apps::all_apps()) {
    std::cerr << "  " << info.name << " — " << info.description << "\n";
  }
  return 2;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--app") {
      options.app = next();
    } else if (arg == "--file") {
      options.file = next();
    } else if (arg == "--dump-app") {
      options.dump_app = next();
    } else if (arg == "--l1") {
      options.l1 = std::stoll(next());
    } else if (arg == "--l2") {
      options.l2 = std::stoll(next());
    } else if (arg == "--target") {
      std::string t = next();
      if (t == "energy") {
        options.target = assign::Target::Energy;
      } else if (t == "time") {
        options.target = assign::Target::Time;
      } else if (t == "balanced") {
        options.target = assign::Target::Balanced;
      } else {
        throw std::invalid_argument("unknown target '" + t + "'");
      }
    } else if (arg == "--no-dma") {
      options.no_dma = true;
    } else if (arg == "--sweep") {
      options.sweep = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--json") {
      options.json = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return !options.app.empty() || !options.file.empty() || !options.dump_app.empty();
}

ir::Program load_program(const Options& options) {
  if (!options.app.empty()) return apps::build_app(options.app);
  std::ifstream in(options.file);
  if (!in) throw std::invalid_argument("cannot open '" + options.file + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return ir::parse_program(text.str());
}

void run_sweep(const ir::Program& program, const Options& options) {
  xplore::SweepConfig config;
  for (ir::i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, options.l2};
  config.target = options.target;
  config.dma.present = !options.no_dma;

  auto samples = xplore::sweep_layer_sizes(program, config);
  auto front = xplore::frontier(samples);
  std::cout << "explored " << samples.size() << " configurations; Pareto frontier:\n";
  core::Table table({"L1", "L2", "cycles", "energy nJ"});
  for (const xplore::TradeoffPoint& p : front) {
    table.add_row({std::to_string(p.l1_bytes), std::to_string(p.l2_bytes),
                   core::Table::num(p.cycles, 0), core::Table::num(p.energy_nj, 0)});
  }
  std::cout << table.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse_args(argc, argv, options)) return usage(argv[0]);

    if (!options.dump_app.empty()) {
      std::cout << ir::serialize(apps::build_app(options.dump_app));
      return 0;
    }

    ir::Program program = load_program(options);
    if (options.verbose) std::cout << ir::to_string(program) << "\n";

    if (options.sweep) {
      run_sweep(program, options);
      return 0;
    }

    mem::PlatformConfig platform;
    platform.l1_bytes = options.l1;
    platform.l2_bytes = options.l2;
    mem::DmaEngine dma;
    dma.present = !options.no_dma;

    auto ws = core::make_workspace(std::move(program), platform, dma);
    core::RunResult run = core::run_mhla(*ws, options.target);

    if (options.verbose) {
      std::cout << "greedy moves: " << run.step1.moves.size()
                << ", cost evaluations: " << run.step1.evaluations << "\n";
      for (const assign::PlacedCopy& pc : run.step1.assignment.copies) {
        const analysis::CopyCandidate& cc = ws->reuse().candidate(pc.cc_id);
        std::cout << "  copy " << cc.array << " nest " << cc.nest << " level " << cc.level
                  << " (" << cc.bytes << " B) -> " << ws->hierarchy().layer(pc.layer).name
                  << "\n";
      }
      std::cout << "\n";
    }
    if (options.json) {
      std::cout << core::to_json(ws->program().name(), run.points) << "\n";
    } else {
      std::cout << sim::format_four_points(ws->program().name(), run.points) << "\n"
                << sim::format_result(run.points.mhla_te);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
