// The command-line face of the library: run the full MHLA pipeline on one
// of the built-in applications or on a program description file (the
// `.mhla` text format, see ir/serialize.h), on a configurable platform.
//
// Usage:
//   mhla_tool --app motion_estimation [options]
//   mhla_tool --file program.mhla [options]
//   mhla_tool --dump-app qsdpcm            # print the .mhla description
//   mhla_tool --cache-merge <out.json> <shard.json>...
//                                          # merge result-cache shards
//
// Options:
//   --config <file>   load a PipelineConfig JSON document (other flags
//                     override individual fields, regardless of order)
//   --l1 <bytes>      L1 scratchpad capacity   (default 4096)
//   --l2 <bytes>      L2 scratchpad capacity   (default 131072, 0 = none)
//   --target <t>      energy | time | balanced (default balanced)
//   --strategy <s>    search strategy registry name (default greedy;
//                     unknown names list the registry)
//   --threads <n>     worker threads for --sweep (0 = hardware)
//   --bnb-threads <n> worker threads for --strategy bnb-par (0 = hardware;
//                     the result is bit-identical for any count)
//   --no-dma          platform without a transfer engine (TE not applicable)
//   --sweep           run the fixed layer-size trade-off grid instead
//   --explore         run the adaptive design-space exploration instead
//                     (searches the default layer-size lattice; --l1/--l2
//                     set the single-run platform and are ignored here)
//   --corpus          explore every registry application in one invocation
//   --budget <n>      --explore/--corpus: cap on sampled cells (0 = off)
//   --cache <file>    --explore/--corpus: persistent result cache (JSON)
//   --cache-merge <out> <shard>...
//                     merge result-cache shard documents into <out> (loaded
//                     first when it exists) and rewrite it via the
//                     crash-safe saver — how N sharded explorations (or N
//                     mhla_serve instances) converge on one warm cache.
//                     Damaged shards are salvaged entry by entry with a
//                     warning; a missing shard path is a validation error.
//   --deadline <s>    wall-clock run budget in seconds (0 = unbounded); an
//                     expired budget degrades the run (best-so-far result,
//                     status budget_exhausted) instead of failing it
//   --max-probes <n>  deterministic run budget in search probes (0 = off) —
//                     same degradation, reproducible truncation point
//   --trace <file>    record the run's span timeline and write it as Chrome
//                     trace-event JSON (load in Perfetto / chrome://tracing);
//                     covers every pipeline stage plus search/explore
//                     internals — and never changes results (bit-identity
//                     with tracing on vs off is a tested contract)
//   --metrics         after the run, dump the process metrics registry
//                     (counters/gauges/histograms); with --json the dump
//                     rides in the result document as a "metrics" block
//   --dump-config     print the effective PipelineConfig JSON and exit
//   --footprints      dump the per-layer/per-nest usage matrix and peaks of
//                     the final (time-extended) assignment; combined with
//                     --json the dump rides in the result document
//   --verbose         also print the program and the chosen assignment
//   --json            machine-readable result (strategy, timings, points)
//
// Exit codes:
//   0  success
//   1  unexpected internal error
//   2  usage error (bad flags; this listing)
//   3  validation error (bad config value, unknown app/strategy, bad input)
//   4  run budget exhausted (single pipeline run returned a degraded,
//      best-so-far result — output is still complete and well-formed)
//   5  I/O failure (unreadable/unwritable file, cache persistence)
//
// --cache-merge uses the same table: 0 on success (salvaged shards
// included), 3 for a missing shard path, 5 when the merged document cannot
// be written.
//
// Errors always produce one structured line on stderr ("error: ...");
// under --json a machine-readable {"error": {...}} object goes to stdout.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "core/json_report.h"
#include "core/pipeline.h"
#include "core/report_table.h"
#include "explore/corpus.h"
#include "explore/explorer.h"
#include "explore/sweep.h"
#include "ir/printer.h"
#include "ir/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace mhla;

namespace {

struct Options {
  std::string app;
  std::string file;
  std::string dump_app;
  core::PipelineConfig pipeline;
  bool sweep = false;
  bool explore = false;
  bool corpus = false;
  long long budget = 0;
  std::string cache;
  std::string trace;
  bool metrics = false;
  bool dump_config = false;
  bool footprints = false;
  bool verbose = false;
  bool json = false;
  std::vector<std::string> cache_merge;  ///< [0] = out, [1..] = shards
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--app <name> | --file <path.mhla> | --dump-app <name>)\n"
               "       [--config <file.json>] [--l1 <bytes>] [--l2 <bytes>]\n"
               "       [--target energy|time|balanced] [--strategy <name>] [--threads <n>]\n"
               "       [--bnb-threads <n>] [--no-dma] [--sweep] [--explore] [--corpus]\n"
               "       [--budget <n>] [--cache <file.json>] [--deadline <seconds>]\n"
               "       [--max-probes <n>] [--trace <file.json>] [--metrics]\n"
               "       [--dump-config] [--footprints] [--verbose] [--json]\n"
               "       " << argv0 << " --cache-merge <out.json> <shard.json>...\n\n"
               "exit codes: 0 ok, 1 internal, 2 usage, 3 validation,\n"
               "            4 run budget exhausted (degraded result), 5 I/O\n\n"
               "strategies:\n";
  for (const std::string& name : assign::searcher_names()) {
    std::cerr << "  " << name << " — " << assign::searcher(name).description() << "\n";
  }
  std::cerr << "\napplications:\n";
  for (const apps::AppInfo& info : apps::all_apps()) {
    std::cerr << "  " << info.name << " — " << info.description << "\n";
  }
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool parse_args(int argc, char** argv, Options& options) {
  // First pass: load --config, so every other flag overrides individual
  // fields of the document regardless of argv order (as documented).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--config") {
      if (i + 1 >= argc) throw std::invalid_argument("--config needs a value");
      options.pipeline = core::pipeline_config_from_json(read_file(argv[i + 1]));
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--app") {
      options.app = next();
    } else if (arg == "--file") {
      options.file = next();
    } else if (arg == "--dump-app") {
      options.dump_app = next();
    } else if (arg == "--config") {
      next();  // loaded in the first pass
    } else if (arg == "--l1") {
      options.pipeline.platform.l1_bytes = std::stoll(next());
    } else if (arg == "--l2") {
      options.pipeline.platform.l2_bytes = std::stoll(next());
    } else if (arg == "--target") {
      options.pipeline.target = assign::parse_target(next());
    } else if (arg == "--strategy") {
      options.pipeline.strategy = next();
      assign::searcher(options.pipeline.strategy);  // fail fast, listing the registry
    } else if (arg == "--threads") {
      long long threads = std::stoll(next());
      if (threads < 0 || threads > std::numeric_limits<unsigned>::max()) {
        throw std::invalid_argument("--threads out of range");
      }
      options.pipeline.num_threads = static_cast<unsigned>(threads);
    } else if (arg == "--bnb-threads") {
      long long threads = std::stoll(next());
      if (threads < 0 || threads > std::numeric_limits<unsigned>::max()) {
        throw std::invalid_argument("--bnb-threads out of range");
      }
      options.pipeline.search.bnb_threads = static_cast<unsigned>(threads);
    } else if (arg == "--no-dma") {
      options.pipeline.dma.present = false;
    } else if (arg == "--sweep") {
      options.sweep = true;
    } else if (arg == "--explore") {
      options.explore = true;
    } else if (arg == "--corpus") {
      options.corpus = true;
    } else if (arg == "--budget") {
      options.budget = std::stoll(next());
      if (options.budget < 0) throw std::invalid_argument("--budget must be >= 0");
    } else if (arg == "--cache") {
      options.cache = next();
    } else if (arg == "--cache-merge") {
      options.cache_merge.push_back(next());  // the output document
      while (i + 1 < argc && argv[i + 1][0] != '-') options.cache_merge.push_back(argv[++i]);
      if (options.cache_merge.size() < 2) {
        throw std::invalid_argument("--cache-merge needs an output and at least one shard");
      }
    } else if (arg == "--deadline") {
      options.pipeline.search.budget.deadline_seconds = std::stod(next());
      if (options.pipeline.search.budget.deadline_seconds < 0) {
        throw std::invalid_argument("--deadline must be >= 0");
      }
    } else if (arg == "--max-probes") {
      options.pipeline.search.budget.max_probes = std::stol(next());
      if (options.pipeline.search.budget.max_probes < 0) {
        throw std::invalid_argument("--max-probes must be >= 0");
      }
    } else if (arg == "--trace") {
      options.trace = next();
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--dump-config") {
      options.dump_config = true;
    } else if (arg == "--footprints") {
      options.footprints = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--json") {
      options.json = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  if (options.sweep + options.explore + options.corpus > 1) {
    throw std::invalid_argument("--sweep, --explore and --corpus are mutually exclusive");
  }
  if (options.corpus && (!options.app.empty() || !options.file.empty())) {
    throw std::invalid_argument("--corpus explores every registry app; drop --app/--file");
  }
  return options.dump_config || options.corpus || !options.app.empty() ||
         !options.file.empty() || !options.dump_app.empty() || !options.cache_merge.empty();
}

int run_cache_merge(const Options& options) {
  const std::string& out_path = options.cache_merge.front();
  // An existing output participates in the merge, so repeated invocations
  // accumulate instead of overwriting earlier shards.
  xplore::ResultCache merged;
  if (std::filesystem::exists(out_path)) {
    xplore::ResultCache::LoadReport report;
    merged = xplore::ResultCache::load(out_path, report);
    if (!report.clean) std::cerr << "warning: " << report.message << "\n";
  }
  std::size_t adopted = 0;
  for (std::size_t i = 1; i < options.cache_merge.size(); ++i) {
    const std::string& shard_path = options.cache_merge[i];
    if (!std::filesystem::exists(shard_path)) {
      throw std::invalid_argument("cache shard '" + shard_path + "' does not exist");
    }
    xplore::ResultCache::LoadReport report;
    xplore::ResultCache shard = xplore::ResultCache::load(shard_path, report);
    if (!report.clean) std::cerr << "warning: " << report.message << "\n";
    adopted += shard.size();
    merged.merge_from(shard);
  }
  merged.save(out_path);  // crash-safe: temp + fsync + atomic rename
  std::cout << "merged " << (options.cache_merge.size() - 1) << " shards (" << adopted
            << " entries) into " << out_path << " (" << merged.size() << " total entries)\n";
  return 0;
}

/// The --json emitters below funnel through this: without --metrics the
/// body is the whole document (shape unchanged from earlier releases); with
/// it, the body nests under "result" next to a "metrics" registry snapshot.
void print_json_result(const std::string& body, const Options& options) {
  if (!options.metrics) {
    std::cout << body << "\n";
    return;
  }
  std::cout << "{\n  \"result\":\n" << body << ",\n  \"metrics\": "
            << core::to_json(obs::Registry::instance().snapshot()) << "\n}\n";
}

ir::Program load_program(const Options& options) {
  if (!options.app.empty()) return apps::build_app(options.app);
  return ir::parse_program(read_file(options.file));
}

void run_sweep(const ir::Program& program, const Options& options) {
  xplore::SweepConfig config;
  for (ir::i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, options.pipeline.platform.l2_bytes};
  config.pipeline = options.pipeline;

  auto samples = xplore::sweep_layer_sizes(program, config);
  auto front = xplore::frontier(samples);
  if (options.json) {
    print_json_result(core::to_json(front), options);
    return;
  }
  std::cout << "explored " << samples.size() << " configurations; Pareto frontier:\n";
  core::Table table({"L1", "L2", "cycles", "energy nJ"});
  for (const xplore::TradeoffPoint& p : front) {
    table.add_row({std::to_string(p.l1_bytes), std::to_string(p.l2_bytes),
                   core::Table::num(p.cycles, 0), core::Table::num(p.energy_nj, 0)});
  }
  std::cout << table.str();
}

xplore::ExplorerConfig explorer_config(const Options& options) {
  xplore::ExplorerConfig config = xplore::default_explorer();
  config.pipeline = options.pipeline;
  config.budget = static_cast<std::size_t>(options.budget);
  config.cache_path = options.cache;
  return config;
}

void print_explore_report(const xplore::ExploreResult& result) {
  std::cout << "evaluated " << result.evaluations << " of " << result.lattice_cells
            << " lattice cells (" << result.cache_hits << " cache hits, " << result.rounds
            << " rounds" << (result.converged ? ", converged" : "")
            << (result.budget_exhausted ? ", budget exhausted" : "") << "); Pareto frontier:\n";
  core::Table table({"L1", "L2", "cycles", "energy nJ"});
  for (const xplore::TradeoffPoint& p : result.frontier) {
    table.add_row({std::to_string(p.l1_bytes), std::to_string(p.l2_bytes),
                   core::Table::num(p.cycles, 0), core::Table::num(p.energy_nj, 0)});
  }
  std::cout << table.str();
}

void run_explore(const ir::Program& program, const Options& options) {
  xplore::Explorer explorer(explorer_config(options));
  xplore::ExploreResult result = explorer.run(program);
  if (options.json) {
    print_json_result(xplore::to_json(result), options);
    return;
  }
  print_explore_report(result);
}

void run_corpus(const Options& options) {
  xplore::CorpusConfig config;
  config.explorer = explorer_config(options);
  xplore::CorpusResult result = xplore::explore_corpus(config);
  if (options.json) {
    print_json_result(xplore::to_json(result), options);
    return;
  }
  for (const xplore::CorpusEntry& entry : result.entries) {
    std::cout << "--- " << entry.program << " ---\n";
    print_explore_report(entry.result);
  }
  std::cout << "corpus total: " << result.evaluations << " evaluations, " << result.cache_hits
            << " cache hits\n";
}

/// The structured error path of the top-level boundary: one parseable line
/// on stderr always, plus a machine-readable object on stdout under --json
/// (so a consumer of the JSON stream never has to scrape stderr).
int fail(const Options& options, const std::string& kind, const std::string& what, int code) {
  std::cerr << "error: " << what << "\n";
  if (options.json) {
    std::cout << "{\"error\": {\"kind\": \"" << kind << "\", \"message\": \""
              << core::json_escape(what) << "\"}}\n";
  }
  return code;
}

/// Everything after flag parsing, returning the process exit code.  Split
/// out of main so the observability epilogue (trace export, text metrics
/// dump) runs after *any* successful path — including the degraded exit 4,
/// whose timeline is the one most worth looking at.
int run_tool(Options& options) {
    if (!options.cache_merge.empty()) return run_cache_merge(options);

    if (options.dump_config) {
      std::cout << core::to_json(options.pipeline) << "\n";
      return 0;
    }

    if (!options.dump_app.empty()) {
      std::cout << ir::serialize(apps::build_app(options.dump_app));
      return 0;
    }

    if (options.corpus) {
      run_corpus(options);
      return 0;
    }

    ir::Program program = load_program(options);
    if (options.verbose) std::cout << ir::to_string(program) << "\n";

    if (options.sweep) {
      run_sweep(program, options);
      return 0;
    }
    if (options.explore) {
      run_explore(program, options);
      return 0;
    }

    // The workspace build is the analyze stage (run(Program) would span it
    // itself; this path pre-builds to keep the workspace for the reports).
    std::unique_ptr<core::Workspace> ws;
    {
      obs::Span span("analyze", "pipeline");
      ws = core::make_workspace(std::move(program), options.pipeline.platform,
                                options.pipeline.dma);
    }
    core::Pipeline pipeline(options.pipeline);
    if (options.verbose) {
      pipeline.set_progress([](const std::string& stage, double seconds) {
        std::cerr << "stage " << stage << ": " << core::Table::num(seconds * 1e3, 2) << " ms\n";
      });
    }
    core::PipelineResult run = pipeline.run(*ws);

    if (options.verbose) {
      std::cout << "strategy " << run.strategy << ": " << run.search.moves.size()
                << " moves, " << run.search.evaluations << " cost evaluations, "
                << run.search.states_explored << " states\n";
      for (const assign::PlacedCopy& pc : run.search.assignment.copies) {
        const analysis::CopyCandidate& cc = ws->reuse().candidate(pc.cc_id);
        std::cout << "  copy " << cc.array << " nest " << cc.nest << " level " << cc.level
                  << " (" << cc.bytes << " B) -> " << ws->hierarchy().layer(pc.layer).name
                  << "\n";
      }
      std::cout << "\n";
    }
    // The final (time-extended) point's simulation already carries the
    // per-layer/per-nest footprint report of the chosen assignment.
    const assign::FootprintReport& footprints = run.points.mhla_te.footprints;
    if (options.json) {
      if (options.footprints || options.metrics) {
        std::cout << "{\n  \"result\":\n" << core::to_json(ws->program().name(), run, 1);
        if (options.footprints) {
          std::cout << ",\n  \"footprints\":\n" << core::to_json(footprints, ws->hierarchy(), 1);
        }
        if (options.metrics) {
          std::cout << ",\n  \"metrics\": " << core::to_json(obs::Registry::instance().snapshot());
        }
        std::cout << "\n}\n";
      } else {
        std::cout << core::to_json(ws->program().name(), run) << "\n";
      }
    } else {
      std::cout << sim::format_four_points(ws->program().name(), run.points) << "\n"
                << sim::format_result(run.points.mhla_te);
      if (options.footprints) {
        std::cout << "\nfootprints (live bytes per layer x top-level nest, final assignment):\n";
        core::Table table({"layer", "capacity", "peak", "usage per nest"});
        for (std::size_t l = 0; l < footprints.usage.size(); ++l) {
          const mem::MemLayer& layer = ws->hierarchy().layer(static_cast<int>(l));
          std::ostringstream row;
          for (std::size_t t = 0; t < footprints.usage[l].size(); ++t) {
            row << footprints.usage[l][t] << (t + 1 < footprints.usage[l].size() ? " " : "");
          }
          table.add_row({layer.name,
                         layer.unbounded() ? "unbounded" : std::to_string(layer.capacity_bytes),
                         std::to_string(footprints.peak_bytes[l]), row.str()});
        }
        std::cout << table.str();
      }
    }
    // Exit 4 signals the degraded (best-so-far) outcome of a bounded single
    // run: the output above is complete and well-formed, scripts just learn
    // the search did not run to its natural end.  Explorer/corpus cell
    // budgets are a sampling knob, not a failure, and stay exit 0.
    return run.search.status == assign::SearchStatus::BudgetExhausted ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse_args(argc, argv, options)) return usage(argv[0]);

    // Recording must be live before the pipeline constructs; the exporter
    // below only serializes what the rings buffered.
    if (!options.trace.empty()) obs::Tracer::instance().enable(true);

    int code = run_tool(options);

    if (!options.trace.empty()) {
      std::ofstream out(options.trace);
      if (!out) throw std::runtime_error("cannot write trace file '" + options.trace + "'");
      out << obs::Tracer::instance().chrome_trace_json() << "\n";
      if (!out.flush()) {
        throw std::runtime_error("short write on trace file '" + options.trace + "'");
      }
    }
    if (options.metrics && !options.json) {
      std::cout << obs::to_text(obs::Registry::instance().snapshot());
    }
    return code;
  } catch (const std::invalid_argument& e) {
    return fail(options, "validation", e.what(), 3);
  } catch (const std::out_of_range& e) {
    return fail(options, "validation", e.what(), 3);
  } catch (const std::filesystem::filesystem_error& e) {
    return fail(options, "io", e.what(), 5);
  } catch (const std::runtime_error& e) {
    return fail(options, "io", e.what(), 5);
  } catch (const std::exception& e) {
    return fail(options, "internal", e.what(), 1);
  }
}
