// Exploration-as-a-service: a long-running TCP daemon that runs MHLA
// pipeline jobs and design-space explorations on a worker pool behind a
// newline-delimited JSON protocol (see docs/serve.md), with one process-wide
// concurrent result cache shared by every job and persisted crash-safely.
//
// Usage:
//   mhla_serve [--host <ipv4>] [--port <n>] [--port-file <path>]
//              [--workers <n>] [--cache <file.json>]
//              [--persist-interval <seconds>] [--cache-max-entries <n>]
//              [--cache-evict-floor <n>] [--cache-shards <n>]
//              [--stats-interval <seconds>] [--job-retention <n>]
//
// Options:
//   --host <ipv4>             bind address (default 127.0.0.1)
//   --port <n>                TCP port; 0 binds an ephemeral port (default 0)
//   --port-file <path>        write the bound port to <path> once listening
//                             (atomically, so a watcher never reads half a
//                             number) — how scripts find an ephemeral port
//   --workers <n>             concurrent job workers (default 2)
//   --cache <file.json>       persistent result cache: loaded at startup
//                             (salvaging a damaged document), saved by the
//                             periodic persister and at shutdown
//   --persist-interval <s>    periodic persistence period; 0 saves only at
//                             shutdown (default 0)
//   --cache-max-entries <n>   bound on resident cache entries (0 = unbounded)
//   --cache-evict-floor <n>   eviction never drops the cache below this
//   --cache-shards <n>        lock stripes (rounded up to a power of two)
//   --stats-interval <s>      broadcast a `stats` metrics event every <s>
//                             seconds to connections subscribed via
//                             {"cmd":"metrics","stream":true}; 0 disables
//                             the broadcaster (default 0; the one-shot
//                             `metrics` verb always works)
//   --job-retention <n>       finished jobs kept answering `status` queries
//                             (FIFO over completion; default 1024).  Bounds
//                             the job registry on a long-lived server
//
// Prints "mhla_serve listening on HOST:PORT" once accepting.  SIGINT/SIGTERM
// (or a `shutdown` request) drain the server: running jobs are cancelled
// through their budgets and finish with anytime results, then the cache is
// saved and the process exits 0.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 validation error,
// 5 startup I/O failure (bind, unreadable cache).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "serve/server.h"

using namespace mhla;

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--host <ipv4>] [--port <n>] [--port-file <path>] [--workers <n>]\n"
               "       [--cache <file.json>] [--persist-interval <seconds>]\n"
               "       [--cache-max-entries <n>] [--cache-evict-floor <n>]\n"
               "       [--cache-shards <n>] [--stats-interval <seconds>]\n"
               "       [--job-retention <n>]\n\n"
               "exit codes: 0 clean shutdown, 2 usage, 3 validation, 5 I/O\n";
  return 2;
}

/// Stage + rename so a poller that sees the file always reads the complete
/// port number.
void write_port_file(const std::string& path, int port) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write port file '" + temp + "'");
    out << port << "\n";
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot move port file into place at '" + path + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig config;
  std::string port_file;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--host") {
        config.host = next();
      } else if (arg == "--port") {
        config.port = std::stoi(next());
        if (config.port < 0 || config.port > 65535) {
          throw std::invalid_argument("--port out of range");
        }
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--workers") {
        long workers = std::stol(next());
        if (workers < 1) throw std::invalid_argument("--workers must be >= 1");
        config.workers = static_cast<unsigned>(workers);
      } else if (arg == "--cache") {
        config.cache_path = next();
      } else if (arg == "--persist-interval") {
        config.persist_interval_seconds = std::stod(next());
        if (config.persist_interval_seconds < 0) {
          throw std::invalid_argument("--persist-interval must be >= 0");
        }
      } else if (arg == "--cache-max-entries") {
        long long n = std::stoll(next());
        if (n < 0) throw std::invalid_argument("--cache-max-entries must be >= 0");
        config.cache_bounds.max_entries = static_cast<std::size_t>(n);
      } else if (arg == "--cache-evict-floor") {
        long long n = std::stoll(next());
        if (n < 0) throw std::invalid_argument("--cache-evict-floor must be >= 0");
        config.cache_bounds.evict_floor = static_cast<std::size_t>(n);
      } else if (arg == "--cache-shards") {
        long long n = std::stoll(next());
        if (n < 0) throw std::invalid_argument("--cache-shards must be >= 0");
        config.cache_shards = static_cast<std::size_t>(n);
      } else if (arg == "--job-retention") {
        long long n = std::stoll(next());
        if (n < 0) throw std::invalid_argument("--job-retention must be >= 0");
        config.job_retention = static_cast<std::size_t>(n);
      } else if (arg == "--stats-interval") {
        config.stats_interval_seconds = std::stod(next());
        if (config.stats_interval_seconds < 0) {
          throw std::invalid_argument("--stats-interval must be >= 0");
        }
      } else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return usage(argv[0]);
      }
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }

  try {
    serve::Server server(config);
    if (!port_file.empty()) write_port_file(port_file, server.port());
    std::cout << "mhla_serve listening on " << config.host << ":" << server.port()
              << std::endl;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // Poll between the signal flag (async-signal context can only set it)
    // and the server's own stop request (a `shutdown` protocol verb).
    while (!server.wait_for(0.2)) {
      if (g_interrupted.load(std::memory_order_relaxed)) server.request_stop();
    }
    server.stop();
    std::cout << "mhla_serve stopped\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 5;
  }
}
