// Domain example 3: the MPEG-2-like encoder, exercising the parts of the
// API the other examples do not:
//  * optimization targets (energy-only vs time-only vs balanced),
//  * platforms without a DMA engine (the paper: "In case that our
//    architecture does not support a memory transfer engine, TE are not
//    applicable"),
//  * per-layer access statistics of the chosen configuration.
//
// Build & run:   cmake --build build && ./build/examples/video_encoder

#include <iostream>

#include "apps/registry.h"
#include "core/pipeline.h"
#include "core/report_table.h"

using namespace mhla;

int main() {
  core::PipelineConfig config;  // default platform: 4 KiB L1 + 128 KiB L2

  // --- 1. Optimization-target comparison: one PipelineConfig per target,
  //        everything else shared.
  std::cout << "=== optimization targets (mpeg2_encoder) ===\n";
  core::Table table({"target", "time %", "energy %", "copies"});
  auto ws = core::make_workspace(apps::build_mpeg2_encoder(), config.platform, config.dma);
  for (const char* label : {"energy", "time", "balanced"}) {
    config.target = assign::parse_target(label);
    core::PipelineResult run = core::Pipeline(config).run(*ws);
    double time_pct = sim::percent_of(run.points.mhla_te.total_cycles(),
                                      run.points.out_of_box.total_cycles());
    double energy_pct =
        sim::percent_of(run.points.mhla_te.energy_nj, run.points.out_of_box.energy_nj);
    table.add_row({label, core::Table::num(time_pct), core::Table::num(energy_pct),
                   std::to_string(run.search.assignment.copies.size())});
  }
  std::cout << table.str() << "\n";

  // --- 2. With vs without a DMA engine: TE applicability.
  std::cout << "=== DMA engine availability ===\n";
  config.target = assign::Target::Balanced;
  core::PipelineConfig config_nodma = config;
  config_nodma.dma.present = false;

  core::PipelineResult with_dma = core::Pipeline(config).run(*ws);
  core::PipelineResult without_dma =
      core::Pipeline(config_nodma).run(apps::build_mpeg2_encoder());
  double base = with_dma.points.out_of_box.total_cycles();
  std::cout << "  MHLA, blocking transfers : "
            << core::Table::num(sim::percent_of(with_dma.points.mhla.total_cycles(), base))
            << " %\n";
  std::cout << "  MHLA + TE (DMA present)  : "
            << core::Table::num(sim::percent_of(with_dma.points.mhla_te.total_cycles(), base))
            << " %\n";
  std::cout << "  MHLA + TE (no DMA)       : "
            << core::Table::num(
                   sim::percent_of(without_dma.points.mhla_te.total_cycles(), base))
            << " %  <- TE not applicable, equals blocking\n\n";

  // --- 3. Per-layer statistics of the final configuration.
  std::cout << "=== MHLA+TE configuration detail ===\n"
            << sim::format_result(with_dma.points.mhla_te);
  return 0;
}
