// Quickstart: express a small loop-nest application in the MHLA IR, run the
// two-step MHLA exploration (layer assignment + time extensions), and print
// the paper-style normalized comparison.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/pipeline.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace mhla;
using ir::ac;
using ir::av;

int main() {
  // --- 1. Describe the application: a tiny blocked matrix-vector kernel.
  ir::ProgramBuilder pb("quickstart");
  pb.array("matrix", {256, 256}, 4).input();
  pb.array("vec", {256}, 4).input();
  pb.array("out", {256}, 4).output();

  pb.begin_loop("row", 0, 256);
  pb.begin_loop("col", 0, 256);
  pb.stmt("mac", 1)
      .read("matrix", {av("row"), av("col")})
      .read("vec", {av("col")});
  pb.end_loop();
  pb.stmt("store", 1).write("out", {av("row")});
  pb.end_loop();

  // --- 2. Pick a platform: 2 KiB L1 + 32 KiB L2 scratchpads over SDRAM,
  //        with a DMA engine for the prefetching step.
  core::PipelineConfig config;
  config.platform.l1_bytes = 2 * 1024;
  config.platform.l2_bytes = 32 * 1024;
  // defaults: DMA present (30-cycle setup), strategy "greedy", balanced target

  ir::Program program = pb.finish();
  std::cout << ir::to_string(program) << "\n";

  // --- 3. Run the MHLA pipeline (analyze -> assign -> time-extend ->
  //        simulate), one PipelineConfig driving every stage.
  core::Pipeline pipeline(config);
  core::PipelineResult run = pipeline.run(std::move(program));

  std::cout << "selected copies: " << run.search.assignment.copies.size()
            << "  (strategy " << run.strategy << ", " << run.search.moves.size()
            << " moves)\n\n";
  std::cout << sim::format_four_points("quickstart", run.points) << "\n";
  std::cout << "details of the MHLA+TE configuration:\n"
            << sim::format_result(run.points.mhla_te);
  return 0;
}
