// Quickstart: express a small loop-nest application in the MHLA IR, run the
// two-step MHLA exploration (layer assignment + time extensions), and print
// the paper-style normalized comparison.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/driver.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace mhla;
using ir::ac;
using ir::av;

int main() {
  // --- 1. Describe the application: a tiny blocked matrix-vector kernel.
  ir::ProgramBuilder pb("quickstart");
  pb.array("matrix", {256, 256}, 4).input();
  pb.array("vec", {256}, 4).input();
  pb.array("out", {256}, 4).output();

  pb.begin_loop("row", 0, 256);
  pb.begin_loop("col", 0, 256);
  pb.stmt("mac", 1)
      .read("matrix", {av("row"), av("col")})
      .read("vec", {av("col")});
  pb.end_loop();
  pb.stmt("store", 1).write("out", {av("row")});
  pb.end_loop();

  // --- 2. Pick a platform: 2 KiB L1 + 32 KiB L2 scratchpads over SDRAM,
  //        with a DMA engine for the prefetching step.
  mem::PlatformConfig platform;
  platform.l1_bytes = 2 * 1024;
  platform.l2_bytes = 32 * 1024;
  mem::DmaEngine dma;  // defaults: present, 30-cycle setup

  auto workspace = core::make_workspace(pb.finish(), platform, dma);
  std::cout << ir::to_string(workspace->program()) << "\n";

  // --- 3. Run MHLA (step 1: selection & assignment; step 2: TE).
  core::RunResult run = core::run_mhla(*workspace, assign::Target::Balanced);

  std::cout << "selected copies: " << run.step1.assignment.copies.size()
            << "  (greedy moves: " << run.step1.moves.size() << ")\n\n";
  std::cout << sim::format_four_points("quickstart", run.points) << "\n";
  std::cout << "details of the MHLA+TE configuration:\n"
            << sim::format_result(run.points.mhla_te);
  return 0;
}
