// Command-line client for mhla_serve: builds one protocol request, sends it,
// and prints every reply event verbatim (one JSON object per line), so shell
// pipelines can post-process the stream with any JSON tool.
//
// Usage:
//   mhla_client --port <n> --submit  (--app <name> | --file <path.mhla>) [opts]
//   mhla_client --port <n> --explore (--app <name> | --file <path.mhla>) [opts]
//   mhla_client --port <n> --status [--job <n>]
//   mhla_client --port <n> --cancel --job <n>
//   mhla_client --port <n> --cache-stats
//   mhla_client --port <n> --metrics [--stream]
//   mhla_client --port <n> --shutdown
//
// Options:
//   --host <ipv4>      server address (default 127.0.0.1)
//   --config <file>    PipelineConfig JSON document (flags override fields)
//   --l1/--l2 <bytes>  platform layer capacities (submit; explore uses axes)
//   --strategy <name>  search strategy registry name
//   --threads <n>      per-job worker threads (the server multiplies this
//                      by its own job workers)
//   --deadline <s>     wall-clock run budget of the job
//   --max-probes <n>   deterministic probe budget of the job
//   --no-dma           platform without a transfer engine
//   --budget <n>       --explore: cap on sampled lattice cells
//   --explore-te       --explore: add the TE-off axis variant
//   --seed-stride <n>  --explore: coarse-seed stride (default 2)
//   --stream           --metrics: after the snapshot, keep the connection
//                      open and print the server's periodic `stats` events
//                      until the server closes (requires a server started
//                      with --stats-interval)
//
// For --submit/--explore the client streams events until the job's terminal
// "done" event.  Exit codes: 0 success, 1 the server reported an error event
// or a failed job, 2 usage error, 3 validation error, 5 connection/I/O
// failure.

#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/registry.h"
#include "core/json.h"
#include "core/json_report.h"
#include "ir/serialize.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/socket.h"

using namespace mhla;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --port <n> [--host <ipv4>] <action> [options]\n"
         "actions:\n"
         "  --submit  (--app <name> | --file <path.mhla>)   run one pipeline job\n"
         "  --explore (--app <name> | --file <path.mhla>)   run a lattice exploration\n"
         "  --status [--job <n>]                            report jobs\n"
         "  --cancel --job <n>                              cancel a job\n"
         "  --cache-stats                                   report cache counters\n"
         "  --metrics [--stream]                            server metrics snapshot\n"
         "  --shutdown                                      stop the server\n"
         "options: [--config <file>] [--l1 <bytes>] [--l2 <bytes>] [--strategy <name>]\n"
         "         [--threads <n>] [--deadline <s>] [--max-probes <n>] [--no-dma]\n"
         "         [--budget <n>] [--explore-te] [--seed-stride <n>]\n\n"
         "exit codes: 0 ok, 1 server-reported error, 2 usage, 3 validation, 5 I/O\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  bool have_port = false;
  serve::Request request;
  int actions = 0;  ///< how many action flags were given (must be exactly 1)
  std::string app;
  std::string file;
};

void set_action(Options& options, serve::Command command) {
  options.request.command = command;
  ++options.actions;
}

bool parse_args(int argc, char** argv, Options& options) {
  // First pass: --config, so other flags override its fields in any order
  // (same contract as mhla_tool).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--config") {
      if (i + 1 >= argc) throw std::invalid_argument("--config needs a value");
      options.request.config = core::pipeline_config_from_json(read_file(argv[i + 1]));
      options.request.has_config = true;
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    auto config_field = [&]() { options.request.has_config = true; };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::stoi(next());
      options.have_port = true;
    } else if (arg == "--submit") {
      set_action(options, serve::Command::Submit);
    } else if (arg == "--explore") {
      set_action(options, serve::Command::Explore);
    } else if (arg == "--status") {
      set_action(options, serve::Command::Status);
    } else if (arg == "--cancel") {
      set_action(options, serve::Command::Cancel);
    } else if (arg == "--cache-stats") {
      set_action(options, serve::Command::CacheStats);
    } else if (arg == "--metrics") {
      set_action(options, serve::Command::Metrics);
    } else if (arg == "--stream") {
      options.request.stream_stats = true;
    } else if (arg == "--shutdown") {
      set_action(options, serve::Command::Shutdown);
    } else if (arg == "--app") {
      options.app = next();
    } else if (arg == "--file") {
      options.file = next();
    } else if (arg == "--config") {
      next();  // loaded in the first pass
    } else if (arg == "--job") {
      long long job = std::stoll(next());
      if (job < 0) throw std::invalid_argument("--job must be >= 0");
      options.request.job = static_cast<std::uint64_t>(job);
      options.request.has_job = true;
    } else if (arg == "--l1") {
      options.request.config.platform.l1_bytes = std::stoll(next());
      config_field();
    } else if (arg == "--l2") {
      options.request.config.platform.l2_bytes = std::stoll(next());
      config_field();
    } else if (arg == "--strategy") {
      options.request.config.strategy = next();
      config_field();
    } else if (arg == "--threads") {
      long long threads = std::stoll(next());
      if (threads < 0 || threads > std::numeric_limits<unsigned>::max()) {
        throw std::invalid_argument("--threads out of range");
      }
      options.request.config.num_threads = static_cast<unsigned>(threads);
      config_field();
    } else if (arg == "--deadline") {
      options.request.config.search.budget.deadline_seconds = std::stod(next());
      if (options.request.config.search.budget.deadline_seconds < 0) {
        throw std::invalid_argument("--deadline must be >= 0");
      }
      config_field();
    } else if (arg == "--max-probes") {
      options.request.config.search.budget.max_probes = std::stol(next());
      if (options.request.config.search.budget.max_probes < 0) {
        throw std::invalid_argument("--max-probes must be >= 0");
      }
      config_field();
    } else if (arg == "--no-dma") {
      options.request.config.dma.present = false;
      config_field();
    } else if (arg == "--budget") {
      long long budget = std::stoll(next());
      if (budget < 0) throw std::invalid_argument("--budget must be >= 0");
      options.request.explore.budget = static_cast<std::size_t>(budget);
    } else if (arg == "--explore-te") {
      options.request.explore.explore_te = true;
    } else if (arg == "--seed-stride") {
      long long stride = std::stoll(next());
      if (stride < 1) throw std::invalid_argument("--seed-stride must be >= 1");
      options.request.explore.seed_stride = static_cast<std::size_t>(stride);
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  if (!options.have_port || options.actions != 1) return false;
  if (options.request.command == serve::Command::Cancel && !options.request.has_job) {
    throw std::invalid_argument("--cancel requires --job");
  }
  bool needs_program = options.request.command == serve::Command::Submit ||
                       options.request.command == serve::Command::Explore;
  if (needs_program == (options.app.empty() && options.file.empty())) {
    return false;  // program given without an action needing it, or missing
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse_args(argc, argv, options)) return usage(argv[0]);
    if (!options.app.empty()) {
      options.request.program_text = ir::serialize(apps::build_app(options.app));
    } else if (!options.file.empty()) {
      options.request.program_text = read_file(options.file);
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::out_of_range& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }

  try {
    serve::Socket socket = serve::connect_to(options.host, options.port);
    if (!serve::write_line(socket, serve::to_json(options.request))) {
      std::cerr << "error: connection closed before the request was sent\n";
      return 5;
    }

    const bool streaming = options.request.command == serve::Command::Submit ||
                           options.request.command == serve::Command::Explore;
    const bool stats_stream = options.request.command == serve::Command::Metrics &&
                              options.request.stream_stats;
    serve::LineReader reader(socket);
    std::string line;
    int exit_code = 5;  // EOF before any terminal event is an I/O failure
    while (reader.read_line(line)) {
      std::cout << line << "\n";
      core::Json event = core::Json::parse(line);
      const std::string& name = event.at("event").string();
      if (name == "error") {
        exit_code = 1;
        break;
      }
      if (!streaming) {
        exit_code = 0;
        // A subscribed metrics connection stays open: keep relaying the
        // periodic `stats` lines until the server closes (EOF exits 0).
        if (stats_stream) continue;
        break;
      }
      if (name == "done") {
        exit_code = event.at("state").string() == "failed" ? 1 : 0;
        break;
      }
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 5;
  }
}
